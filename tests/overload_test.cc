// Overload defenses: admission control (per-shard inflight/queue limits,
// kOverloaded + retry-after hints), client retry budgets (token bucket,
// kRetryBudgetExhausted), and the two park registries under retransmission —
// a parked read must not double-count starvation across retransmissions, and
// a gap-parked commit must chain a retransmitted commit instead of refusing
// it (or committing twice). Commit starvation fires a verdict distinct from
// read starvation.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/config/shard_map.h"
#include "src/core/cluster.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t container, uint64_t local) { return ObjectId{container, local}; }

// Counts trace events by kind for the duration of a scope (the tracer holds at
// most one listener, so tests that also want a watchdog must pick one).
class KindCounter : public TraceListener {
 public:
  KindCounter() { Tracer::Get().SetListener(this); }
  ~KindCounter() override { Tracer::Get().SetListener(nullptr); }

  void OnTrace(const TraceEvent& event) override {
    ++counts_[event.kind];
    events_.push_back(event);
  }

  uint64_t count(TraceKind kind) const {
    auto it = counts_.find(kind);
    return it == counts_.end() ? 0 : it->second;
  }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::map<TraceKind, uint64_t> counts_;
  std::vector<TraceEvent> events_;
};

// Logic-test options: no modeled CPU/disk cost, no gossip (so the simulator
// quiesces), early lock release at its default (on).
ClusterOptions BaseOptions(size_t num_sites) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

ClusterOptions ShardedOptions(size_t num_sites, size_t shards_per_site) {
  ClusterOptions o = BaseOptions(num_sites);
  o.servers_per_site.assign(num_sites, shards_per_site);
  return o;
}

Status CommitTx(Cluster& cluster, Tx& tx) {
  Status result = Status::Internal("not finished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  EXPECT_TRUE(done) << "simulation drained before commit finished";
  return result;
}

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   std::string value) {
  Tx tx(client);
  tx.Write(oid, std::move(value));
  return CommitTx(cluster, tx);
}

// Finds a container preferred at `site` that its shard map hashes to `shard`.
ContainerId ContainerOnShard(const ShardMap& map, SiteId site, size_t shard) {
  for (ContainerId c = site;; c += map.num_sites()) {
    if (map.ShardOf(c, site) == shard) {
      return c;
    }
  }
}

// --- bounded read re-park under retransmission (the hot-key regression) -----

// A park that outlives the client's RPC timeout draws retransmissions of the
// same logical read. Each must chain onto the live park (read_park_dedups),
// not open a second DoRead chain: a second chain gets a fresh starvation
// budget and its own starve-out, so one hot-key read blocked behind a stuck
// watermark would be counted starved once per retransmission — the regression
// this test pins down. Exactly one park, one starve, one kUnavailable.
TEST(OverloadParkTest, ParkedReadDedupsRetransmissionsAndStarvesOnce) {
  ClusterOptions options = BaseOptions(1);
  options.server.read_park_soft_retries = 16;
  options.server.read_park_backoff_cap = Millis(8);
  options.server.read_park_budget = Millis(60);
  // Impatient client: retransmits at ~26ms and ~52ms, both while the original
  // read is still parked (the starve lands at ~62ms).
  options.client.rpc_timeout = Millis(25);
  options.client.max_attempts = 8;
  options.client.backoff_base = Millis(1);
  options.client.backoff_cap = Millis(1);
  options.client.backoff_jitter = 0;
  Cluster cluster(options);
  WalterClient* client = cluster.AddClient(0);

  ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 1), "v").ok());
  WalterServer& server = cluster.server(0);
  server.store().AddVisibilityWatermark(Oid(0, 1), Version{0, server.curr_seqno()},
                                        /*tid=*/999999);

  KindCounter traces;
  std::optional<Status> read_status;
  {
    Tx tx(client);
    tx.Read(Oid(0, 1), [&](Status s, std::optional<std::string>) { read_status = s; });
    cluster.RunFor(Millis(45));
    // Mid-park: the retransmissions chained onto the single live park.
    EXPECT_FALSE(read_status.has_value());
    EXPECT_EQ(server.parked_read_count(), 1u) << "retransmission opened a second park";
    EXPECT_GE(server.stats().read_park_dedups, 1u);
    cluster.RunFor(Millis(100));
  }

  ASSERT_TRUE(read_status.has_value()) << "starved read must surface, not hang";
  EXPECT_EQ(read_status->code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().reads_starved, 1u)
      << "one logical read starved once, not once per retransmission";
  EXPECT_EQ(traces.count(TraceKind::kReadStarved), 1u);
  EXPECT_EQ(server.parked_read_count(), 0u);

  server.store().DropWatermarksOfTx(999999);
  cluster.RunUntilIdle();
}

// The dedup must also deliver: when the blocker clears while retransmissions
// are chained, every reply copy fires and the newest in-flight attempt carries
// the value home — no starve, no lost read.
TEST(OverloadParkTest, ParkedReadResolvesThroughRetransmissionChain) {
  ClusterOptions options = BaseOptions(1);
  options.server.read_park_soft_retries = 16;
  options.server.read_park_backoff_cap = Millis(8);
  options.server.read_park_budget = Seconds(2);
  options.client.rpc_timeout = Millis(25);
  options.client.max_attempts = 16;
  options.client.backoff_base = Millis(1);
  options.client.backoff_cap = Millis(1);
  options.client.backoff_jitter = 0;
  Cluster cluster(options);
  WalterClient* client = cluster.AddClient(0);

  ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 1), "hot").ok());
  WalterServer& server = cluster.server(0);
  server.store().AddVisibilityWatermark(Oid(0, 1), Version{0, server.curr_seqno()},
                                        /*tid=*/777777);

  std::optional<Status> read_status;
  std::optional<std::string> read_value;
  Tx tx(client);
  tx.Read(Oid(0, 1), [&](Status s, std::optional<std::string> v) {
    read_status = s;
    read_value = std::move(v);
  });
  cluster.RunFor(Millis(60));
  EXPECT_FALSE(read_status.has_value());
  EXPECT_GE(server.stats().read_park_dedups, 2u);

  server.store().DropWatermarksOfTx(777777);
  while (!read_status.has_value() && cluster.sim().Step()) {
  }
  ASSERT_TRUE(read_status.has_value());
  EXPECT_TRUE(read_status->ok()) << read_status->ToString();
  EXPECT_EQ(read_value, "hot");
  EXPECT_EQ(server.stats().reads_starved, 0u);
  EXPECT_EQ(server.parked_read_count(), 0u);
  cluster.RunUntilIdle();
}

// --- commit-gap parking under retransmission --------------------------------

// Sharded fixture with shard 0 -> shard 1 propagation suppressed: a snapshot
// assigned by shard 0 after a local commit is ahead of shard 1, so a commit
// routed to shard 1 parks on the gap.
struct GapRig {
  explicit GapRig(ClusterOptions options)
      : cluster(std::move(options)),
        client(cluster.AddClient(0)),
        c0(ContainerOnShard(cluster.shard_map(), 0, 0)),
        c1(ContainerOnShard(cluster.shard_map(), 0, 1)) {}

  // Drops server-to-server traffic from shard 0 to shard 1 (client RPCs use
  // client ports and keep flowing).
  void BlockPropagation() {
    cluster.net().SetDropFilter([](const Message&, const Address& from, const Address& to) {
      return from == Address{0, kWalterPort} && to == Address{1, kWalterPort};
    });
  }
  void Heal() { cluster.net().SetDropFilter(nullptr); }

  Cluster cluster;
  WalterClient* client;
  ContainerId c0;
  ContainerId c1;
};

ClusterOptions GapOptions() {
  ClusterOptions options = ShardedOptions(1, 2);
  // Fast propagation resend: batches dropped while the filter is up must be
  // retried within the impatient client's attempt horizon (~400ms) once the
  // filter clears. lock_wait_timeout must stay below resend_timeout (see
  // server.h).
  options.server.resend_timeout = Millis(50);
  options.server.lock_wait_timeout = Millis(20);
  options.server.read_park_soft_retries = 16;
  options.server.read_park_backoff_cap = Millis(8);
  options.client.rpc_timeout = Millis(25);
  options.client.max_attempts = 16;
  options.client.backoff_base = Millis(1);
  options.client.backoff_cap = Millis(1);
  options.client.backoff_jitter = 0;
  return options;
}

// A commit parked on a sibling-shard snapshot gap outliving the client's RPC
// timeout: the retransmitted commit (which piggybacks the same buffered
// update) must chain onto the live park via the waiter registry — before the
// registry existed it fell through to the lost-state guard and was refused
// while the original could still commit, or worse re-buffered and committed
// the transaction a second time. When the gap heals, the commit lands exactly
// once.
TEST(OverloadParkTest, GapParkedCommitDedupsRetransmissionsThenCommitsOnce) {
  ClusterOptions options = GapOptions();
  options.server.read_park_budget = Seconds(2);
  GapRig rig(options);
  rig.BlockPropagation();

  // Advance shard 0 past shard 1: a fast commit at shard 0 that cannot
  // propagate.
  ASSERT_TRUE(CommitWrite(rig.cluster, rig.client, Oid(rig.c0, 1), "a").ok());

  WalterServer& shard1 = rig.cluster.server(rig.cluster.shard_map().ServerAt(0, 1));
  KindCounter traces;
  Tx tx(rig.client);
  std::optional<Status> commit_status;
  std::optional<std::string> snapshot_read;
  tx.Read(Oid(rig.c0, 1), [&](Status s, std::optional<std::string> v) {
    ASSERT_TRUE(s.ok());
    snapshot_read = std::move(v);
    // Snapshot now covers shard 0's commit; the write routes the commit to
    // shard 1, which has not applied it.
    tx.Write(Oid(rig.c1, 2), "b");
    tx.Commit([&](Status cs) { commit_status = cs; });
  });
  rig.cluster.RunFor(Millis(80));

  EXPECT_EQ(snapshot_read, "a");
  EXPECT_FALSE(commit_status.has_value()) << "gap cannot close while propagation is blocked";
  EXPECT_GE(shard1.stats().commit_gap_parks, 1u);
  EXPECT_GE(shard1.stats().commit_dedups, 1u)
      << "retransmitted commit must chain onto the live gap park";
  EXPECT_EQ(shard1.gap_commit_waiter_count(), 1u);
  EXPECT_GE(traces.count(TraceKind::kCommitGapWait), 1u);

  rig.Heal();
  // A fresh commit at shard 0 ships the backlog to shard 1 and closes the gap.
  ASSERT_TRUE(CommitWrite(rig.cluster, rig.client, Oid(rig.c0, 3), "nudge").ok());
  while (!commit_status.has_value() && rig.cluster.sim().Step()) {
  }
  ASSERT_TRUE(commit_status.has_value());
  EXPECT_TRUE(commit_status->ok()) << commit_status->ToString();

  // Committed exactly once, despite the retransmissions.
  EXPECT_EQ(shard1.stats().fast_commits, 1u);
  EXPECT_EQ(shard1.stats().commits_starved, 0u);
  EXPECT_EQ(shard1.gap_commit_waiter_count(), 0u);
  EXPECT_EQ(traces.count(TraceKind::kCommitStarved), 0u);

  Tx check(rig.client);
  std::optional<std::string> value;
  bool done = false;
  check.Read(Oid(rig.c1, 2), [&](Status s, std::optional<std::string> v) {
    ASSERT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  while (!done && rig.cluster.sim().Step()) {
  }
  EXPECT_EQ(value, "b");
  rig.cluster.RunUntilIdle();
}

// A gap that never closes starves the parked commit out with kUnavailable
// once read_park_budget is spent — bounded, surfaced, and attributed to the
// right blocker: commits_starved and kCommitStarved, distinct from the read
// starvation counters (a starved commit points at sibling-shard propagation,
// a starved read at a dead decision edge), never a silent hang or a false
// "stuck" verdict.
TEST(OverloadParkTest, StarvedGapCommitFiresDistinctVerdict) {
  ClusterOptions options = GapOptions();
  options.server.read_park_budget = Millis(60);
  GapRig rig(options);
  rig.BlockPropagation();

  ASSERT_TRUE(CommitWrite(rig.cluster, rig.client, Oid(rig.c0, 1), "a").ok());

  WalterServer& shard1 = rig.cluster.server(rig.cluster.shard_map().ServerAt(0, 1));
  KindCounter traces;
  Tx tx(rig.client);
  std::optional<Status> commit_status;
  tx.Read(Oid(rig.c0, 1), [&](Status s, std::optional<std::string>) {
    ASSERT_TRUE(s.ok());
    tx.Write(Oid(rig.c1, 2), "b");
    tx.Commit([&](Status cs) { commit_status = cs; });
  });
  rig.cluster.RunFor(Millis(200));

  ASSERT_TRUE(commit_status.has_value()) << "starved commit must surface, not hang";
  EXPECT_EQ(commit_status->code(), StatusCode::kUnavailable);
  EXPECT_EQ(shard1.stats().commits_starved, 1u);
  EXPECT_EQ(shard1.stats().reads_starved, 0u) << "commit starvation is not read starvation";
  EXPECT_EQ(traces.count(TraceKind::kCommitStarved), 1u);
  EXPECT_EQ(traces.count(TraceKind::kReadStarved), 0u);
  EXPECT_EQ(shard1.gap_commit_waiter_count(), 0u);

  // The distinct verdict stamps the transaction's terminal stage: kTxAbort
  // first (the watchdog retires the transaction), then kCommitStarved names
  // the blocker.
  SimTime abort_at = 0;
  SimTime starved_at = 0;
  for (const TraceEvent& e : traces.events()) {
    if (e.tid == tx.tid() && e.kind == TraceKind::kTxAbort) {
      abort_at = e.time;
    }
    if (e.tid == tx.tid() && e.kind == TraceKind::kCommitStarved) {
      starved_at = e.time;
    }
  }
  EXPECT_GT(starved_at, 0u);
  EXPECT_GE(starved_at, abort_at);

  rig.Heal();
  rig.cluster.RunUntilIdle();
}

// --- server-side admission control -------------------------------------------

// The inflight limit counts admitted-but-unanswered ops — a parked read holds
// its slot for as long as it holds server state. While the slot is taken,
// further ops bounce with kOverloaded plus a retry-after hint; aborts are
// always admitted (they shrink the overload); and the slot frees when the
// park resolves.
TEST(OverloadAdmissionTest, InflightLimitRejectsWithHintAndRecovers) {
  ClusterOptions options = BaseOptions(1);
  options.server.admission_max_inflight = 1;
  options.server.read_park_budget = Seconds(10);
  Cluster cluster(options);
  WalterClient* writer = cluster.AddClient(0);

  ASSERT_TRUE(CommitWrite(cluster, writer, Oid(0, 1), "v").ok());
  WalterServer& server = cluster.server(0);
  server.store().AddVisibilityWatermark(Oid(0, 1), Version{0, server.curr_seqno()},
                                        /*tid=*/555555);

  KindCounter traces;
  // Occupy the only slot with a parked read.
  WalterClient* parked_client = cluster.AddClient(0);
  std::optional<Status> parked_status;
  Tx parked(parked_client);
  parked.Read(Oid(0, 1), [&](Status s, std::optional<std::string>) { parked_status = s; });
  cluster.RunFor(Millis(5));
  ASSERT_FALSE(parked_status.has_value());
  EXPECT_EQ(server.admitted_inflight(), 1u);

  // Next op bounces at admission: kOverloaded surfaces raw (no retry budget
  // configured on this client), with a millisecond-floor retry-after hint.
  WalterClient::Options raw;
  raw.max_attempts = 1;
  WalterClient* shed_client = cluster.AddClient(0, raw);
  std::optional<Status> shed_status;
  {
    Tx tx(shed_client);
    tx.Read(Oid(0, 2), [&](Status s, std::optional<std::string>) { shed_status = s; });
    while (!shed_status.has_value() && cluster.sim().Step()) {
    }
  }
  ASSERT_TRUE(shed_status.has_value());
  EXPECT_EQ(shed_status->code(), StatusCode::kOverloaded);
  EXPECT_EQ(server.stats().admit_rejects, 1u);
  ASSERT_EQ(traces.count(TraceKind::kAdmitReject), 1u);
  for (const TraceEvent& e : traces.events()) {
    if (e.kind == TraceKind::kAdmitReject) {
      EXPECT_GE(e.arg, static_cast<uint64_t>(Millis(1))) << "hint below the 1ms floor";
    }
  }

  // Aborts are always admitted, even at the limit.
  bool abort_done = false;
  {
    Tx tx(shed_client);
    tx.Abort([&] { abort_done = true; });
    while (!abort_done && cluster.sim().Step()) {
    }
  }
  EXPECT_TRUE(abort_done);
  EXPECT_EQ(server.stats().admit_rejects, 1u) << "the abort must not be rejected";

  // Clearing the park frees the slot; admission recovers.
  server.store().DropWatermarksOfTx(555555);
  while (!parked_status.has_value() && cluster.sim().Step()) {
  }
  EXPECT_TRUE(parked_status->ok());
  EXPECT_EQ(server.admitted_inflight(), 0u);
  EXPECT_EQ(server.stats().admitted_inflight_peak, 1u);

  std::optional<Status> after;
  {
    Tx tx(shed_client);
    tx.Read(Oid(0, 2), [&](Status s, std::optional<std::string>) { after = s; });
    while (!after.has_value() && cluster.sim().Step()) {
    }
  }
  EXPECT_TRUE(after->ok());
  cluster.RunUntilIdle();
}

// The queue limit sheds before any CPU is charged: a burst of simultaneous
// reads against a modeled CPU and a 1-deep queue admits some, rejects the
// rest, and records the high-water mark (kQueueDepth).
TEST(OverloadAdmissionTest, QueueLimitShedsBurst) {
  ClusterOptions options = BaseOptions(1);
  options.server.perf = PerfModel::Ec2();
  options.server.admission_max_queue = 1;
  options.client.max_attempts = 1;
  Cluster cluster(options);
  // Listener first: kQueueDepth marks high-water peaks, and the very first
  // admitted op (the warm-up write) sets the initial peak.
  KindCounter traces;
  WalterClient* writer = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, writer, Oid(0, 1), "v").ok());

  constexpr int kBurst = 20;
  std::vector<std::unique_ptr<Tx>> txs;
  int ok = 0;
  int overloaded = 0;
  int done = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto tx = std::make_unique<Tx>(cluster.AddClient(0));
    tx->Read(Oid(0, 1), [&](Status s, std::optional<std::string>) {
      ++done;
      if (s.ok()) {
        ++ok;
      } else if (s.code() == StatusCode::kOverloaded) {
        ++overloaded;
      }
    });
    txs.push_back(std::move(tx));
  }
  while (done < kBurst && cluster.sim().Step()) {
  }
  WalterServer& server = cluster.server(0);
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GT(ok, 0);
  EXPECT_GT(overloaded, 0) << "a 20-deep burst must trip a 1-deep queue limit";
  EXPECT_EQ(server.stats().admit_rejects, static_cast<uint64_t>(overloaded));
  EXPECT_GE(server.stats().cpu_queue_peak, 1u);
  EXPECT_GE(traces.count(TraceKind::kQueueDepth), 1u);
  txs.clear();
  cluster.RunUntilIdle();
}

// --- client-side retry budget --------------------------------------------------

// kOverloaded responses are absorbed by retransmitting after the server's
// hint, one token each; an empty bucket sheds the op with kUnavailable and a
// kRetryBudgetExhausted trace (watchdog-visible), never a hang. The bucket
// refills over time, so a later surge gets its retries back.
TEST(OverloadBudgetTest, TokenBucketBoundsRetriesThenRefills) {
  ClusterOptions options = BaseOptions(1);
  options.server.admission_max_inflight = 1;
  options.server.read_park_budget = Seconds(30);
  options.client.overload_retry_tokens = 2;
  options.client.overload_token_refill_per_s = 10.0;
  Cluster cluster(options);
  WalterClient* writer = cluster.AddClient(0);

  ASSERT_TRUE(CommitWrite(cluster, writer, Oid(0, 1), "v").ok());
  WalterServer& server = cluster.server(0);
  server.store().AddVisibilityWatermark(Oid(0, 1), Version{0, server.curr_seqno()},
                                        /*tid=*/444444);

  // Park a read to hold the only admission slot for the whole test.
  WalterClient* parked_client = cluster.AddClient(0);
  std::optional<Status> parked_status;
  Tx parked(parked_client);
  parked.Read(Oid(0, 1), [&](Status s, std::optional<std::string>) { parked_status = s; });
  cluster.RunFor(Millis(5));
  ASSERT_FALSE(parked_status.has_value());

  KindCounter traces;
  WalterClient* budget_client = cluster.AddClient(0);
  auto shed_read = [&]() {
    std::optional<Status> status;
    Tx tx(budget_client);
    tx.Read(Oid(0, 2), [&](Status s, std::optional<std::string>) { status = s; });
    while (!status.has_value() && cluster.sim().Step()) {
    }
    return *status;
  };

  // Bucket starts full (2): two hint-paced retransmissions, then the shed.
  Status first = shed_read();
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_EQ(budget_client->overload_retries_sent(), 2u);
  EXPECT_EQ(budget_client->overload_sheds(), 1u);
  EXPECT_EQ(traces.count(TraceKind::kRetryBudgetExhausted), 1u);
  EXPECT_EQ(server.stats().admit_rejects, 3u);

  // 300ms at 10 tokens/s refills past the 2-token cap; the next op gets its
  // retries back before shedding again.
  cluster.RunFor(Millis(300));
  Status second = shed_read();
  EXPECT_EQ(second.code(), StatusCode::kUnavailable);
  EXPECT_EQ(budget_client->overload_retries_sent(), 4u);
  EXPECT_EQ(budget_client->overload_sheds(), 2u);
  EXPECT_EQ(traces.count(TraceKind::kRetryBudgetExhausted), 2u);

  server.store().DropWatermarksOfTx(444444);
  while (!parked_status.has_value() && cluster.sim().Step()) {
  }
  EXPECT_TRUE(parked_status->ok());
  EXPECT_EQ(server.admitted_inflight(), 0u);
  cluster.RunUntilIdle();
}

// A shed inside a transaction must terminate it crisply: the commit path
// surfaces kUnavailable to the application (which can retry on a fresh
// snapshot) instead of leaving the watchdog to report a stuck transaction.
TEST(OverloadBudgetTest, ShedCommitSurfacesBeforeWatchdogBudget) {
  ClusterOptions options = BaseOptions(1);
  options.server.admission_max_inflight = 1;
  options.server.read_park_budget = Seconds(30);
  options.client.overload_retry_tokens = 1;
  options.client.overload_token_refill_per_s = 0.001;  // effectively no refill
  Cluster cluster(options);
  WalterClient* writer = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, writer, Oid(0, 1), "v").ok());
  WalterServer& server = cluster.server(0);
  server.store().AddVisibilityWatermark(Oid(0, 1), Version{0, server.curr_seqno()},
                                        /*tid=*/333333);

  WalterClient* parked_client = cluster.AddClient(0);
  std::optional<Status> parked_status;
  Tx parked(parked_client);
  parked.Read(Oid(0, 1), [&](Status s, std::optional<std::string>) { parked_status = s; });
  cluster.RunFor(Millis(5));
  ASSERT_FALSE(parked_status.has_value());

  {
    // Scoped: the watchdog's periodic check keeps the simulator non-idle, so
    // it must die before the drain below.
    WatchdogOptions wo;
    wo.budget = Seconds(1);
    wo.check_interval = Millis(100);
    wo.abort_on_stuck = false;
    LivenessWatchdog watchdog(&cluster.sim(), wo);

    WalterClient* app = cluster.AddClient(0);
    std::optional<Status> commit_status;
    Tx tx(app);
    tx.Write(Oid(0, 9), "w");
    tx.Commit([&](Status s) { commit_status = s; });
    cluster.RunFor(Seconds(2));

    ASSERT_TRUE(commit_status.has_value()) << "shed commit must surface, not hang";
    EXPECT_EQ(commit_status->code(), StatusCode::kUnavailable);
    EXPECT_FALSE(watchdog.fired())
        << "a shed transaction terminates; it must not read as stuck: "
        << (watchdog.fired() ? watchdog.reports()[0].verdict : "");
  }

  server.store().DropWatermarksOfTx(333333);
  while (!parked_status.has_value() && cluster.sim().Step()) {
  }
  EXPECT_TRUE(parked_status->ok());
  cluster.RunUntilIdle();
}

}  // namespace
}  // namespace walter
