// Property tests for storage recovery: for random operation sequences, a store
// rebuilt from (checkpoint at a random point) + (WAL tail) is observationally
// identical to the original — for any snapshot; and truncating the WAL tail
// loses exactly a suffix, never corrupts a prefix.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/storage/store.h"

namespace walter {
namespace {

constexpr size_t kObjects = 24;
constexpr size_t kCsets = 8;
constexpr size_t kElems = 12;

TxRecord RandomRecord(Rng& rng, uint64_t seqno, SiteId origin) {
  TxRecord rec;
  rec.tid = seqno * 10 + origin;
  rec.origin = origin;
  rec.version = Version{origin, seqno};
  rec.start_vts = VectorTimestamp(std::vector<uint64_t>{seqno > 0 ? seqno - 1 : 0});
  size_t updates = 1 + rng.Uniform(4);
  for (size_t i = 0; i < updates; ++i) {
    if (rng.Bernoulli(0.6)) {
      rec.updates.push_back(ObjectUpdate::Data(
          ObjectId{1, rng.Uniform(kObjects)},
          "v" + std::to_string(seqno) + "-" + std::to_string(i)));
    } else {
      ObjectId setid{2, rng.Uniform(kCsets)};
      ObjectId elem{3, rng.Uniform(kElems)};
      rec.updates.push_back(rng.Bernoulli(0.7) ? ObjectUpdate::Add(setid, elem)
                                               : ObjectUpdate::Del(setid, elem));
    }
  }
  return rec;
}

// Compares the observable state of two stores at a snapshot.
void ExpectEquivalent(const Store& a, const Store& b, const VectorTimestamp& vts) {
  for (uint64_t o = 0; o < kObjects; ++o) {
    ObjectId oid{1, o};
    EXPECT_EQ(a.ReadRegular(oid, vts), b.ReadRegular(oid, vts)) << oid.ToString();
  }
  for (uint64_t c = 0; c < kCsets; ++c) {
    ObjectId setid{2, c};
    EXPECT_EQ(a.ReadCset(setid, vts), b.ReadCset(setid, vts)) << setid.ToString();
  }
}

class RecoveryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryPropertyTest, CheckpointPlusTailEqualsOriginal) {
  Rng rng(GetParam());
  Store original;
  std::string checkpoint;
  size_t checkpoint_at = 30 + rng.Uniform(40);  // checkpoint mid-sequence
  constexpr uint64_t kTotal = 120;

  for (uint64_t seqno = 1; seqno <= kTotal; ++seqno) {
    original.Apply(RandomRecord(rng, seqno, 0));
    if (seqno == checkpoint_at) {
      checkpoint = original.SerializeCheckpoint();
    }
  }

  Store recovered;
  auto result = recovered.Recover(checkpoint, original.wal().bytes());
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.records_replayed, kTotal - checkpoint_at);

  // Observationally identical at several snapshots, including historical ones
  // past the checkpoint frontier.
  for (uint64_t at : {checkpoint_at, checkpoint_at + 10, static_cast<size_t>(kTotal)}) {
    ExpectEquivalent(original, recovered, VectorTimestamp(std::vector<uint64_t>{at}));
  }
}

TEST_P(RecoveryPropertyTest, TornTailLosesOnlyASuffix) {
  Rng rng(GetParam() ^ 0x5a5a);
  Store original;
  constexpr uint64_t kTotal = 60;
  for (uint64_t seqno = 1; seqno <= kTotal; ++seqno) {
    original.Apply(RandomRecord(rng, seqno, 0));
  }
  std::string wal_bytes = original.wal().bytes();
  // Chop at a random byte position: recovery must yield a clean prefix.
  size_t cut = rng.Uniform(wal_bytes.size());
  Store recovered;
  auto result = recovered.Recover("", wal_bytes.substr(0, cut));
  uint64_t prefix = result.records_replayed;
  EXPECT_LE(prefix, kTotal);
  // The recovered store matches the original at the prefix snapshot.
  ExpectEquivalent(original, recovered, VectorTimestamp(std::vector<uint64_t>{prefix}));
}

TEST_P(RecoveryPropertyTest, DoubleRecoveryIsIdempotent) {
  Rng rng(GetParam() ^ 0x1111);
  Store original;
  for (uint64_t seqno = 1; seqno <= 50; ++seqno) {
    original.Apply(RandomRecord(rng, seqno, 0));
  }
  std::string checkpoint = original.SerializeCheckpoint();

  Store once;
  once.Recover(checkpoint, original.wal().bytes());
  // Recover again from the first recovery's own checkpoint.
  std::string checkpoint2 = once.SerializeCheckpoint();
  Store twice;
  twice.RestoreCheckpoint(checkpoint2);
  ExpectEquivalent(original, twice, VectorTimestamp(std::vector<uint64_t>{50}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace walter
