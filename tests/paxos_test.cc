// Tests of the Paxos replicated log: agreement, ordering, progress under
// message loss, minority failure, and dueling proposers (safety property
// checks parameterized over seeds).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/config/paxos.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace walter {
namespace {

class PaxosFixture {
 public:
  explicit PaxosFixture(size_t n, uint64_t seed = 1)
      : sim_(seed), net_(&sim_, Topology::Uniform(n, Millis(50), Millis(1))) {
    logs_.resize(n);  // stable before any lambda captures a reference
    for (SiteId s = 0; s < n; ++s) {
      nodes_.push_back(std::make_unique<PaxosNode>(&sim_, &net_, s, n));
      auto& log = logs_[s];
      nodes_.back()->SetLearnCallback(
          [&log](uint64_t slot, const std::string& value) { log.push_back({slot, value}); });
    }
  }

  PaxosNode& node(SiteId s) { return *nodes_[s]; }
  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  const std::vector<std::pair<uint64_t, std::string>>& log(SiteId s) const { return logs_[s]; }

  void RunFor(SimDuration d) { sim_.RunUntil(sim_.Now() + d); }

 private:
  Simulator sim_;
  Network net_;
  std::vector<std::unique_ptr<PaxosNode>> nodes_;
  std::vector<std::vector<std::pair<uint64_t, std::string>>> logs_;
};

TEST(PaxosTest, SingleProposalLearnedEverywhere) {
  PaxosFixture fx(3);
  bool chosen = false;
  fx.node(0).Propose("hello", [&](Status s, uint64_t slot) {
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(slot, 1u);
    chosen = true;
  });
  fx.RunFor(Seconds(5));
  EXPECT_TRUE(chosen);
  for (SiteId s = 0; s < 3; ++s) {
    ASSERT_EQ(fx.log(s).size(), 1u) << "node " << s;
    EXPECT_EQ(fx.log(s)[0].second, "hello");
  }
}

TEST(PaxosTest, SequentialProposalsKeepOrder) {
  PaxosFixture fx(3);
  for (int i = 0; i < 5; ++i) {
    fx.node(0).Propose("v" + std::to_string(i), nullptr);
  }
  fx.RunFor(Seconds(10));
  for (SiteId s = 0; s < 3; ++s) {
    ASSERT_EQ(fx.log(s).size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(fx.log(s)[i].second, "v" + std::to_string(i));
    }
  }
}

TEST(PaxosTest, ConcurrentProposersAgreeOnOneOrder) {
  PaxosFixture fx(3, 7);
  int done = 0;
  for (SiteId s = 0; s < 3; ++s) {
    for (int i = 0; i < 3; ++i) {
      fx.node(s).Propose("n" + std::to_string(s) + "v" + std::to_string(i),
                         [&](Status st, uint64_t) {
                           EXPECT_TRUE(st.ok());
                           ++done;
                         });
    }
  }
  fx.RunFor(Seconds(60));
  EXPECT_EQ(done, 9);
  ASSERT_EQ(fx.log(0).size(), 9u);
  for (SiteId s = 1; s < 3; ++s) {
    ASSERT_EQ(fx.log(s).size(), 9u);
    for (size_t i = 0; i < 9; ++i) {
      EXPECT_EQ(fx.log(s)[i].second, fx.log(0)[i].second)
          << "divergent log at node " << s << " slot " << i;
    }
  }
}

TEST(PaxosTest, ProgressWithMinorityDown) {
  PaxosFixture fx(3);
  fx.node(2).SetDown(true);
  bool chosen = false;
  fx.node(0).Propose("majority", [&](Status s, uint64_t) {
    EXPECT_TRUE(s.ok());
    chosen = true;
  });
  fx.RunFor(Seconds(10));
  EXPECT_TRUE(chosen);
  EXPECT_EQ(fx.log(0).size(), 1u);
  EXPECT_EQ(fx.log(1).size(), 1u);
}

TEST(PaxosTest, NoProgressWithMajorityDownThenRecovers) {
  PaxosFixture fx(3);
  fx.node(1).SetDown(true);
  fx.node(2).SetDown(true);
  bool chosen = false;
  fx.node(0).Propose("stalled", [&](Status s, uint64_t) { chosen = s.ok(); });
  fx.RunFor(Seconds(5));
  EXPECT_FALSE(chosen);  // no quorum
  fx.node(1).SetDown(false);
  fx.RunFor(Seconds(10));
  EXPECT_TRUE(chosen);  // retries succeed once quorum is back
}

class PaxosLossTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaxosLossTest, SafetyAndLivenessUnderMessageLoss) {
  PaxosFixture fx(5, GetParam());
  fx.net().SetLossProbability(0.2);
  int done = 0;
  for (SiteId s = 0; s < 5; ++s) {
    fx.node(s).Propose("p" + std::to_string(s), [&](Status st, uint64_t) {
      EXPECT_TRUE(st.ok());
      ++done;
    });
  }
  fx.RunFor(Seconds(120));
  fx.net().SetLossProbability(0);
  fx.RunFor(Seconds(30));
  EXPECT_EQ(done, 5);
  // Safety: every pair of nodes agrees on every slot both have learned.
  for (SiteId a = 0; a < 5; ++a) {
    for (SiteId b = a + 1; b < 5; ++b) {
      size_t common = std::min(fx.log(a).size(), fx.log(b).size());
      for (size_t i = 0; i < common; ++i) {
        EXPECT_EQ(fx.log(a)[i].second, fx.log(b)[i].second)
            << "nodes " << a << "/" << b << " disagree at slot " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosLossTest, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace walter
