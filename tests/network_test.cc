// Tests for the topology, message delivery model and RPC layer.
#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace walter {
namespace {

constexpr uint32_t kEcho = 7;

TEST(TopologyTest, Ec2MatrixMatchesPaper) {
  Topology t = Topology::Ec2();
  ASSERT_EQ(t.num_sites(), 4u);
  EXPECT_EQ(t.name(0), "VA");
  EXPECT_EQ(t.name(3), "SG");
  EXPECT_EQ(t.Rtt(0, 1), Millis(82));
  EXPECT_EQ(t.Rtt(1, 0), Millis(82));  // symmetric
  EXPECT_EQ(t.Rtt(0, 3), Millis(261));
  EXPECT_EQ(t.Rtt(2, 3), Millis(277));
  EXPECT_EQ(t.Rtt(0, 0), Millis(0.5));
  EXPECT_EQ(t.MaxRttFrom(0), Millis(261));  // VA -> SG
  EXPECT_EQ(t.MaxRttFrom(1), Millis(190));  // CA -> SG
}

TEST(TopologyTest, SubsetKeepsPrefix) {
  Topology t = Topology::Ec2Subset(2);
  ASSERT_EQ(t.num_sites(), 2u);
  EXPECT_EQ(t.Rtt(0, 1), Millis(82));
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(1), net_(&sim_, MakeTopology()) { net_.SetJitter(0); }

  static Topology MakeTopology() {
    Topology t = Topology::Uniform(3, Millis(100), Millis(1));
    return t;
  }

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, OneWayDeliveryLatency) {
  RpcEndpoint a(&net_, Address{0, 1});
  RpcEndpoint b(&net_, Address{1, 1});
  SimTime arrival = -1;
  b.Handle(kEcho, [&](const Message& m, RpcEndpoint::ReplyFn) {
    arrival = sim_.Now();
    EXPECT_EQ(m.payload.view(), "hello");
  });
  a.Send(Address{1, 1}, kEcho, "hello");
  sim_.Run();
  // One-way = RTT/2 = 50 ms, plus tiny serialization delay.
  EXPECT_GE(arrival, Millis(50));
  EXPECT_LT(arrival, Millis(51));
}

TEST_F(NetworkTest, RpcRoundTrip) {
  RpcEndpoint a(&net_, Address{0, 1});
  RpcEndpoint b(&net_, Address{1, 1});
  b.Handle(kEcho, [](const Message& m, RpcEndpoint::ReplyFn reply) {
    Message resp;
    resp.payload = "re:" + m.payload.ToString();
    reply(std::move(resp));
  });
  std::string got;
  SimTime done = 0;
  a.Call(Address{1, 1}, kEcho, "ping", [&](Status s, const Message& m) {
    ASSERT_TRUE(s.ok());
    got = m.payload.ToString();
    done = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(got, "re:ping");
  EXPECT_GE(done, Millis(100));  // full RTT
  EXPECT_LT(done, Millis(102));
}

TEST_F(NetworkTest, RpcTimesOutWhenPeerDown) {
  RpcEndpoint a(&net_, Address{0, 1});
  RpcEndpoint b(&net_, Address{1, 1});
  b.SetDown(true);
  Status result = Status::Ok();
  a.Call(
      Address{1, 1}, kEcho, "ping",
      [&](Status s, const Message&) { result = s; }, Millis(500));
  sim_.Run();
  EXPECT_EQ(result.code(), StatusCode::kTimeout);
}

TEST_F(NetworkTest, PartitionDropsCrossSiteTraffic) {
  RpcEndpoint a(&net_, Address{0, 1});
  RpcEndpoint b(&net_, Address{1, 1});
  bool delivered = false;
  b.Handle(kEcho, [&](const Message&, RpcEndpoint::ReplyFn) { delivered = true; });
  net_.SetPartitioned(0, 1, true);
  a.Send(Address{1, 1}, kEcho, "x");
  sim_.Run();
  EXPECT_FALSE(delivered);
  net_.SetPartitioned(0, 1, false);
  a.Send(Address{1, 1}, kEcho, "x");
  sim_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, IsolationCutsAllButIntraSite) {
  RpcEndpoint a0(&net_, Address{0, 1});
  RpcEndpoint a1(&net_, Address{0, 2});
  RpcEndpoint b(&net_, Address{1, 1});
  int local = 0;
  int remote = 0;
  a1.Handle(kEcho, [&](const Message&, RpcEndpoint::ReplyFn) { ++local; });
  b.Handle(kEcho, [&](const Message&, RpcEndpoint::ReplyFn) { ++remote; });
  net_.IsolateSite(0, true);
  a0.Send(Address{0, 2}, kEcho, "x");
  a0.Send(Address{1, 1}, kEcho, "x");
  sim_.Run();
  EXPECT_EQ(local, 1);
  EXPECT_EQ(remote, 0);
}

TEST_F(NetworkTest, FifoPerLink) {
  RpcEndpoint a(&net_, Address{0, 1});
  RpcEndpoint b(&net_, Address{1, 1});
  std::vector<std::string> order;
  b.Handle(kEcho, [&](const Message& m, RpcEndpoint::ReplyFn) {
    order.push_back(m.payload.ToString());
  });
  for (int i = 0; i < 20; ++i) {
    a.Send(Address{1, 1}, kEcho, std::to_string(i));
  }
  sim_.Run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(order[i], std::to_string(i));
  }
}

TEST_F(NetworkTest, BandwidthDelaysLargeMessages) {
  net_.SetJitter(0);
  RpcEndpoint a(&net_, Address{0, 1});
  RpcEndpoint b(&net_, Address{1, 1});
  SimTime small_arrival = 0;
  SimTime big_arrival = 0;
  b.Handle(kEcho, [&](const Message& m, RpcEndpoint::ReplyFn) {
    if (m.payload.size() > 1000) {
      big_arrival = sim_.Now();
    } else {
      small_arrival = sim_.Now();
    }
  });
  a.Send(Address{1, 1}, kEcho, "tiny");
  sim_.Run();
  // 22 Mbps cross-site: 2.2 MB takes ~800 ms of serialization alone.
  a.Send(Address{1, 1}, kEcho, std::string(2'200'000, 'x'));
  sim_.Run();
  EXPECT_LT(small_arrival, Millis(51));
  EXPECT_GT(big_arrival - small_arrival, Millis(700));
}

TEST_F(NetworkTest, SharedPayloadAliasesAcrossDestinationsUnchanged) {
  RpcEndpoint a(&net_, Address{0, 1});
  RpcEndpoint b(&net_, Address{1, 1});
  RpcEndpoint c(&net_, Address{2, 1});
  std::vector<const char*> delivered_ptrs;
  std::vector<std::string> delivered_bytes;
  auto record = [&](const Message& m, RpcEndpoint::ReplyFn) {
    delivered_ptrs.push_back(m.payload.data());
    delivered_bytes.push_back(m.payload.ToString());
  };
  b.Handle(kEcho, record);
  c.Handle(kEcho, record);

  std::string bytes = "batch-contents";
  uint64_t wrapped_before = Payload::bytes_wrapped();
  Payload shared{std::string(bytes)};
  EXPECT_EQ(Payload::bytes_wrapped() - wrapped_before, bytes.size());
  const char* buf = shared.data();

  a.Send(Address{1, 1}, kEcho, shared);
  a.Send(Address{2, 1}, kEcho, shared);
  // The sends alias the wrapped buffer; no further bytes were materialized.
  EXPECT_EQ(Payload::bytes_wrapped() - wrapped_before, bytes.size());

  // Mutating the sender's local string after Send must not be observable at
  // any receiver: the wrapped buffer is immutable and independently owned.
  bytes.assign(bytes.size(), '!');
  sim_.Run();

  ASSERT_EQ(delivered_bytes.size(), 2u);
  EXPECT_EQ(delivered_bytes[0], "batch-contents");
  EXPECT_EQ(delivered_bytes[1], "batch-contents");
  // Both deliveries observed the very same buffer — zero-copy fanout.
  EXPECT_EQ(delivered_ptrs[0], buf);
  EXPECT_EQ(delivered_ptrs[1], buf);
}

TEST_F(NetworkTest, MessageLossDropsSome) {
  net_.SetLossProbability(0.5);
  RpcEndpoint a(&net_, Address{0, 1});
  RpcEndpoint b(&net_, Address{1, 1});
  int delivered = 0;
  b.Handle(kEcho, [&](const Message&, RpcEndpoint::ReplyFn) { ++delivered; });
  for (int i = 0; i < 200; ++i) {
    a.Send(Address{1, 1}, kEcho, "x");
  }
  sim_.Run();
  EXPECT_GT(delivered, 50);
  EXPECT_LT(delivered, 150);
}

TEST_F(NetworkTest, IntraSiteLossIsNotInjected) {
  net_.SetLossProbability(1.0);  // cross-site only
  RpcEndpoint a(&net_, Address{0, 1});
  RpcEndpoint b(&net_, Address{0, 2});
  int delivered = 0;
  b.Handle(kEcho, [&](const Message&, RpcEndpoint::ReplyFn) { ++delivered; });
  a.Send(Address{0, 2}, kEcho, "x");
  sim_.Run();
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace walter
