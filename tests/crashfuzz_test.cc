// Crash-point fuzzing of the recovery path (ctest label: crashfuzz). The
// deterministic sweep — every storage-event boundary, every byte offset of the
// final torn frame, sampled bit-rot and checkpoint-rot images — runs on every
// invocation. Set WALTER_CRASHFUZZ_SWEEP=1 for the long version (more
// transactions, more seeds, denser rot sampling); CI leaves it unset in PRs.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/fault/crash_fuzzer.h"

namespace walter {
namespace {

bool LongSweep() {
  const char* env = std::getenv("WALTER_CRASHFUZZ_SWEEP");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(CrashFuzzTest, EveryCrashPointRecoversWithoutAckedLoss) {
  CrashFuzzerOptions options;
  if (LongSweep()) {
    options.txns_per_site = 8;
    options.bit_rot_stride = 16;
  }
  CrashPointFuzzer fuzzer(options);
  CrashFuzzerReport report = fuzzer.Run();

  EXPECT_TRUE(report.ok()) << report.Summary();
  // Coverage, not just absence of failure: the sweeps must actually have
  // driven the torn-tail, backfill and checkpoint-CRC-fallback paths.
  EXPECT_GT(report.crash_points, 0u);
  EXPECT_GT(report.torn_cases, 12u);  // at least one full frame of offsets
  EXPECT_GT(report.rot_cases, 1u);
  EXPECT_GT(report.torn_detected, 0u);
  EXPECT_GT(report.backfilled, 0u);
  EXPECT_GE(report.bad_checkpoints, 1u);
  EXPECT_GT(report.acked_checked, 0u);
}

TEST(CrashFuzzTest, ShardedDecisionPathSurvivesEveryCrashPoint) {
  // Two shards per site: every transaction is an intra-site 2PC, so the crash
  // sweep kills the victim (site 0's coordinating shard) at every storage
  // boundary with commit decisions, early-released locks and visibility
  // watermarks in flight. Recovery must still lose no acked commit, converge
  // all shards, and pass PSI.
  CrashFuzzerOptions options;
  options.num_sites = 2;
  options.shards_per_site = 2;
  options.seed = 3;
  options.sweep_bit_rot = LongSweep();  // boundary + torn sweeps always run
  CrashPointFuzzer fuzzer(options);
  CrashFuzzerReport report = fuzzer.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.crash_points, 0u);
  EXPECT_GT(report.acked_checked, 0u);
}

TEST(CrashFuzzTest, SerializableModeSurvivesCrashPoints) {
  // Same sweep with every workload transaction at the serializable level: the
  // mode rides the wire through crash/restart, and the reconciled history is
  // validated by the mode-aware checker (PSI properties + no write skew).
  CrashFuzzerOptions options;
  options.seed = 5;
  options.mode = ConsistencyMode::kSerializable;
  options.sweep_bit_rot = LongSweep();  // boundary + torn sweeps always run
  CrashPointFuzzer fuzzer(options);
  CrashFuzzerReport report = fuzzer.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.crash_points, 0u);
  EXPECT_GT(report.acked_checked, 0u);
}

TEST(CrashFuzzTest, DeterministicAcrossSeeds) {
  // A second seed shifts the schedule; the invariants must hold regardless.
  CrashFuzzerOptions options;
  options.seed = 7;
  options.victim = 1;
  options.sweep_bit_rot = LongSweep();  // boundary + torn sweeps always run
  CrashPointFuzzer fuzzer(options);
  CrashFuzzerReport report = fuzzer.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.crash_points, 0u);
}

}  // namespace
}  // namespace walter
