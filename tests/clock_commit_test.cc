// Clock-ordered slow commit (docs/CONSISTENCY.md, docs/PROTOCOL.md) and the
// per-transaction consistency modes:
//  - ClockModel skew bounds and inversion, including a skew of exactly the
//    configured bound (must hold, not fall back) and beyond it (must fall
//    back to a classic immediate vote);
//  - a clock stepped backwards between prepare-hold and release (the release
//    timer re-arms instead of releasing early or dropping the vote);
//  - deterministic (commit_ts, coordinator, tid) release ordering;
//  - the snapshot-covered watermark bypass (flag-gated conflict relaxation);
//  - flag-off runs perform no clock activity at all;
//  - NMSI reads serve through a live watermark instead of parking;
//  - serializable mode detects write skew end-to-end where PSI commits it.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/sim/clock.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t container, uint64_t local) { return ObjectId{container, local}; }

// Two WAN sites (default EC2 topology: real RTTs), logic-test perf/disk, no
// gossip. drift 0 keeps injected-skew tests exact.
ClusterOptions ClockOptions(bool clock_commit) {
  ClusterOptions o;
  o.num_sites = 2;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  o.server.clock.drift_ppm = 0;
  o.clock_commit = clock_commit;
  return o;
}

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   const std::string& value) {
  Tx tx(client);
  tx.Write(oid, value);
  std::optional<Status> result;
  tx.Commit([&](Status s) { result = s; });
  while (!result.has_value() && cluster.sim().Step()) {
  }
  EXPECT_TRUE(result.has_value()) << "commit never resolved";
  return result.value_or(Status::Internal("commit never resolved"));
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid, ConsistencyMode mode) {
  Tx tx(client);
  tx.SetMode(mode);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status s, std::optional<std::string> v) {
    EXPECT_TRUE(s.ok()) << s.ToString();
    value = std::move(v);
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  EXPECT_TRUE(done);
  return value;
}

// --- ClockModel unit tests ---------------------------------------------------

TEST(ClockModelTest, SkewBoundedAndInvertible) {
  ClockModel::Options options;
  options.skew_bound = Millis(5);
  options.drift_ppm = 50.0;
  options.seed = 7;
  for (SiteId s = 0; s < 4; ++s) {
    ClockModel clock(s, options);
    for (SimTime base : {SimTime{0}, Millis(1), Seconds(1), Seconds(100), Seconds(10000)}) {
      SimTime local = clock.LocalNow(base);
      EXPECT_LE(local - base, options.skew_bound) << "site " << s << " base " << base;
      EXPECT_GE(local - base, -options.skew_bound) << "site " << s << " base " << base;
      // BaseTimeFor is the inverse: the clock reads >= local at the returned
      // base instant, and < local one microsecond earlier.
      SimTime inv = clock.BaseTimeFor(local);
      EXPECT_GE(clock.LocalNow(inv), local);
      if (inv > 0) {
        EXPECT_LT(clock.LocalNow(inv - 1), local);
      }
    }
  }
  // Distinct sites disagree (the whole point of the model).
  ClockModel a(0, options);
  ClockModel b(1, options);
  EXPECT_NE(a.LocalNow(Seconds(10)), b.LocalNow(Seconds(10)));
}

TEST(ClockModelTest, InjectStepMovesClockBothWays) {
  ClockModel::Options options;
  options.skew_bound = Millis(5);
  options.drift_ppm = 0;
  ClockModel clock(2, options);
  SimTime base = Seconds(3);
  SimTime before = clock.LocalNow(base);
  clock.InjectStep(Millis(40));
  EXPECT_EQ(clock.LocalNow(base), before + Millis(40));
  clock.InjectStep(-Millis(100));
  EXPECT_EQ(clock.LocalNow(base), before - Millis(60));
  // Inversion still holds with a step applied.
  SimTime local = clock.LocalNow(base);
  EXPECT_GE(clock.LocalNow(clock.BaseTimeFor(local)), local);
}

// --- Clocked slow-commit cluster tests ---------------------------------------

// A participant whose clock sits at exactly +skew_bound is still inside the
// budget: the prepare is held (not fallen back) and the commit succeeds.
TEST(ClockCommitTest, SkewExactlyAtBoundHolds) {
  Cluster cluster(ClockOptions(true));
  WalterServer& participant = cluster.server(1);
  SimTime now = cluster.sim().Now();
  SimDuration skew = participant.clock().LocalNow(now) - now;
  participant.clock().InjectStep(participant.clock().skew_bound() - skew);
  ASSERT_EQ(participant.clock().LocalNow(now) - now, participant.clock().skew_bound());

  WalterClient* client = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 5), "v").ok());
  EXPECT_EQ(cluster.server(0).stats().clock_commits, 1u);
  EXPECT_EQ(participant.stats().clock_holds, 1u);
  EXPECT_EQ(participant.stats().clock_fallbacks, 0u);
  EXPECT_EQ(participant.held_prepare_count(), 0u);
  cluster.RunUntilIdle();
}

// A clock far past the bound blows the hold budget: the participant votes
// immediately (classic 2PC) and counts the fallback; the commit still works.
TEST(ClockCommitTest, SkewBeyondBoundFallsBack) {
  Cluster cluster(ClockOptions(true));
  cluster.server(1).clock().InjectStep(Seconds(2));

  WalterClient* client = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 5), "v").ok());
  EXPECT_EQ(cluster.server(1).stats().clock_fallbacks, 1u);
  EXPECT_EQ(cluster.server(1).stats().clock_holds, 0u);
  cluster.RunUntilIdle();
}

// The clock steps BACKWARDS while a prepare is held: the release timer fires,
// finds nothing due, re-arms (clock_rearms), and the vote is cast once the
// clock passes commit_ts again. Nothing is lost, nothing released early.
TEST(ClockCommitTest, BackwardsClockBetweenPrepareAndReleaseReArms) {
  Cluster cluster(ClockOptions(true));
  WalterServer& participant = cluster.server(1);
  WalterClient* client = cluster.AddClient(0);

  bool injected = false;
  std::function<void()> poll = [&]() {
    if (!injected && participant.held_prepare_count() > 0) {
      participant.clock().InjectStep(-Millis(50));
      injected = true;
      return;
    }
    if (!injected) {
      cluster.sim().After(Millis(1), poll);
    }
  };
  cluster.sim().After(Millis(1), poll);

  ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 5), "v").ok());
  ASSERT_TRUE(injected) << "prepare was never observed held";
  EXPECT_GE(participant.stats().clock_holds, 1u);
  EXPECT_GE(participant.stats().clock_rearms, 1u);
  EXPECT_EQ(participant.held_prepare_count(), 0u);
  cluster.RunUntilIdle();
}

// The snapshot-covered watermark bypass: a watermark whose decided version the
// writer's snapshot already Sees is history, not a conflict. With the flag on
// the write commits (and counts the bypass); with it off the same write hits
// the coverage-independent check and aborts.
TEST(ClockCommitTest, SnapshotCoveredWatermarkBypass) {
  for (bool clock_on : {true, false}) {
    Cluster cluster(ClockOptions(clock_on));
    WalterClient* client = cluster.AddClient(0);
    ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 1), "v1").ok());

    // Plant a watermark on the already-committed version: every fresh
    // snapshot Sees it, so the clock path must treat it as covered history.
    WalterServer& server = cluster.server(0);
    uint64_t seqno = server.committed_vts().at(0);
    ASSERT_GE(seqno, 1u);
    server.store().AddVisibilityWatermark(Oid(0, 1), Version{0, seqno}, /*tid=*/777777);

    Status s = CommitWrite(cluster, client, Oid(0, 1), "v2");
    if (clock_on) {
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_GE(server.stats().clock_conflict_bypasses, 1u);
    } else {
      EXPECT_EQ(s.code(), StatusCode::kAborted);
      EXPECT_EQ(server.stats().clock_conflict_bypasses, 0u);
    }
    server.store().DropWatermarksOfTx(777777);
    cluster.RunUntilIdle();
  }
}

// Two identically seeded runs of concurrent clocked slow commits produce
// identical outcomes: held prepares release in strict (commit_ts, coordinator,
// tid) order, so there is no tie-break nondeterminism to leak.
TEST(ClockCommitTest, DeterministicReleaseOrdering) {
  auto run = [](std::vector<bool>* outcomes, std::string* final_value) {
    ClusterOptions options = ClockOptions(true);
    options.seed = 42;
    Cluster cluster(options);
    std::vector<WalterClient*> clients;
    for (int i = 0; i < 4; ++i) {
      clients.push_back(cluster.AddClient(0));
    }
    int pending = 4;
    std::vector<std::shared_ptr<Tx>> txs;
    for (int i = 0; i < 4; ++i) {
      auto tx = std::make_shared<Tx>(clients[i]);
      txs.push_back(tx);
      tx->Write(Oid(1, 9), "w" + std::to_string(i));  // all contend on one oid
      tx->Write(Oid(1, 100 + i), "p");
      tx->Commit([&, i](Status s) {
        (*outcomes)[i] = s.ok();
        --pending;
      });
    }
    while (pending > 0 && cluster.sim().Step()) {
    }
    EXPECT_EQ(pending, 0);
    cluster.RunUntilIdle();
    *final_value = ReadOnce(cluster, clients[0], Oid(1, 9), ConsistencyMode::kPsi)
                       .value_or("(nil)");
  };
  std::vector<bool> outcomes_a(4), outcomes_b(4);
  std::string final_a, final_b;
  run(&outcomes_a, &final_a);
  run(&outcomes_b, &final_b);
  EXPECT_EQ(outcomes_a, outcomes_b);
  EXPECT_EQ(final_a, final_b);
  // At least one contender wins.
  EXPECT_NE(final_a, "(nil)");
}

// Flag off: WAN slow commits run the classic path with zero clock activity —
// the byte-identity precondition.
TEST(ClockCommitTest, FlagOffHasNoClockActivity) {
  Cluster cluster(ClockOptions(false));
  WalterClient* client = cluster.AddClient(0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 10 + i), "v").ok());
  }
  for (SiteId s = 0; s < 2; ++s) {
    EXPECT_EQ(cluster.server(s).stats().clock_commits, 0u);
    EXPECT_EQ(cluster.server(s).stats().clock_holds, 0u);
    EXPECT_EQ(cluster.server(s).stats().clock_fallbacks, 0u);
    EXPECT_EQ(cluster.server(s).stats().clock_rearms, 0u);
    EXPECT_EQ(cluster.server(s).stats().clock_conflict_bypasses, 0u);
    EXPECT_EQ(cluster.server(s).held_prepare_count(), 0u);
  }
  cluster.RunUntilIdle();
}

// --- Consistency-mode tests --------------------------------------------------

// NMSI reads through a live watermark: where PSI parks (and here, with
// nothing to clear the watermark, would starve), NMSI serves the latest
// applied version immediately and counts the permitted anomaly.
TEST(ConsistencyModeTest, NmsiReadServesThroughWatermark) {
  ClusterOptions options = ClockOptions(false);
  options.num_sites = 1;
  Cluster cluster(options);
  WalterClient* client = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 1), "old").ok());

  WalterServer& server = cluster.server(0);
  server.store().AddVisibilityWatermark(Oid(0, 1), Version{0, server.committed_vts().at(0)},
                                        /*tid=*/555555);

  std::optional<std::string> value =
      ReadOnce(cluster, client, Oid(0, 1), ConsistencyMode::kNmsi);
  EXPECT_EQ(value.value_or("(nil)"), "old");
  EXPECT_GE(server.stats().nmsi_reads_unparked, 1u);
  EXPECT_EQ(server.stats().watermark_read_waits, 0u);

  server.store().DropWatermarksOfTx(555555);
  cluster.RunUntilIdle();
}

// End-to-end write skew: T1 reads x writes y, T2 reads y writes x,
// concurrently. PSI commits both (disjoint write sets — the classic permitted
// anomaly); serializable validates read sets through commit and aborts one.
TEST(ConsistencyModeTest, SerializableRejectsWriteSkewPsiPermitsIt) {
  for (ConsistencyMode mode : {ConsistencyMode::kPsi, ConsistencyMode::kSerializable}) {
    ClusterOptions options = ClockOptions(false);
    options.num_sites = 1;
    Cluster cluster(options);
    WalterClient* client = cluster.AddClient(0);
    ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 1), "x0").ok());
    ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 2), "y0").ok());

    auto t1 = std::make_shared<Tx>(cluster.AddClient(0));
    auto t2 = std::make_shared<Tx>(cluster.AddClient(0));
    t1->SetMode(mode);
    t2->SetMode(mode);
    int pending = 2;
    std::vector<Status> results(2, Status::Ok());
    // Interleave: both read first (concurrent snapshots), then both commit.
    int reads_done = 0;
    auto commit_both = [&]() {
      t1->Write(Oid(0, 2), "y1");
      t2->Write(Oid(0, 1), "x2");
      t1->Commit([&](Status s) {
        results[0] = s;
        --pending;
      });
      t2->Commit([&](Status s) {
        results[1] = s;
        --pending;
      });
    };
    t1->Read(Oid(0, 1), [&](Status s, std::optional<std::string>) {
      ASSERT_TRUE(s.ok());
      if (++reads_done == 2) {
        commit_both();
      }
    });
    t2->Read(Oid(0, 2), [&](Status s, std::optional<std::string>) {
      ASSERT_TRUE(s.ok());
      if (++reads_done == 2) {
        commit_both();
      }
    });
    while (pending > 0 && cluster.sim().Step()) {
    }
    ASSERT_EQ(pending, 0);

    int committed = (results[0].ok() ? 1 : 0) + (results[1].ok() ? 1 : 0);
    if (mode == ConsistencyMode::kPsi) {
      EXPECT_EQ(committed, 2) << "PSI permits write skew";
      EXPECT_EQ(cluster.server(0).stats().ser_validations, 0u);
    } else {
      EXPECT_EQ(committed, 1) << "serializable must abort one side of the skew";
      EXPECT_GE(cluster.server(0).stats().ser_validations, 1u);
      EXPECT_GE(cluster.server(0).stats().aborts_ser_validation, 1u);
    }
    cluster.RunUntilIdle();
  }
}

// Serializable reads preferred at a remote site widen the 2PC participant set:
// the read is validated (and locked through the decision) at its preferred
// site, and the commit still succeeds when nothing conflicts.
TEST(ConsistencyModeTest, SerializableRemoteReadJoins2pc) {
  Cluster cluster(ClockOptions(false));
  WalterClient* client0 = cluster.AddClient(0);
  WalterClient* client1 = cluster.AddClient(1);
  ASSERT_TRUE(CommitWrite(cluster, client1, Oid(1, 3), "remote").ok());
  cluster.RunUntilIdle();  // propagate so site 0 can read it locally

  Tx tx(client0);
  tx.SetMode(ConsistencyMode::kSerializable);
  std::optional<Status> result;
  tx.Read(Oid(1, 3), [&](Status s, std::optional<std::string> v) {
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(v.value_or("(nil)"), "remote");
    tx.Write(Oid(0, 4), "local");
    tx.Commit([&](Status cs) { result = cs; });
  });
  while (!result.has_value() && cluster.sim().Step()) {
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok()) << result->ToString();
  // The read's preferred site (1) saw a prepare: slow commit, not fast.
  EXPECT_GE(cluster.server(0).stats().slow_commits, 1u);
  EXPECT_GE(cluster.server(1).stats().prepares_handled, 1u);
  cluster.RunUntilIdle();
}

}  // namespace
}  // namespace walter
