// Soak test: realistic performance models (EC2 CPU costs, group-commit disk),
// message loss and a transient partition, sustained mixed load from every
// site — then full PSI verification and convergence checks. This is the
// closest test to the paper's actual deployment conditions.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "src/core/cluster.h"
#include "src/psi/checker.h"

namespace walter {
namespace {

struct StressParams {
  uint64_t seed;
  double loss;
  bool partition_blip;
};

class StressTest : public ::testing::TestWithParam<StressParams> {};

TEST_P(StressTest, PsiHoldsUnderRealisticConditions) {
  const StressParams& params = GetParam();
  ClusterOptions options;
  options.num_sites = 3;
  options.seed = params.seed;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  options.server.gossip_interval = Millis(500);
  options.server.resend_timeout = Millis(900);
  options.server.f = 1;
  Cluster cluster(options);
  cluster.net().SetLossProbability(params.loss);

  PsiChecker checker(3);
  std::unordered_map<TxId, std::vector<RecordedRead>> reads_by_tid;
  cluster.ObserveCommits([&](SiteId site, const TxRecord& rec) {
    checker.OnApply(site, rec.tid);
    if (site == rec.origin) {
      RecordedTx recorded;
      recorded.record = rec;
      auto it = reads_by_tid.find(rec.tid);
      if (it != reads_by_tid.end()) {
        recorded.reads = it->second;
      }
      checker.OnCommit(std::move(recorded));
    }
  });

  // Three client loops per site, each mixing read-modify-write transactions on
  // local-preferred objects with cset updates on shared containers.
  auto rng = std::make_shared<Rng>(params.seed * 7 + 3);
  int in_flight = 0;
  int launched = 0;
  constexpr int kTxnsPerLoop = 60;

  std::function<void(WalterClient*, SiteId, int)> run_one =
      [&](WalterClient* client, SiteId site, int remaining) {
        if (remaining == 0) {
          --in_flight;
          return;
        }
        ++launched;
        auto tx = std::make_shared<Tx>(client);
        if (rng->Bernoulli(0.4)) {
          // cset update on a shared container (any preferred site).
          ObjectId setid{rng->Uniform(3), 900};
          tx->SetRead(setid, [&, tx, client, site, remaining, setid](Status s,
                                                                     CountingSet set) {
            if (!s.ok()) {
              run_one(client, site, remaining - 1);
              return;
            }
            TxId tid = tx->tid();
            reads_by_tid[tid] = {RecordedRead{setid, true, std::nullopt, std::move(set)}};
            tx->SetAdd(setid, ObjectId{50, rng->Uniform(30)});
            tx->Commit([&, tx, client, site, remaining, tid](Status s) {
              if (!s.ok()) {
                reads_by_tid.erase(tid);
              }
              run_one(client, site, remaining - 1);
            });
          });
        } else {
          ObjectId oid{site, rng->Uniform(25)};
          tx->Read(oid, [&, tx, client, site, remaining, oid](
                            Status s, std::optional<std::string> v) {
            if (!s.ok()) {
              run_one(client, site, remaining - 1);
              return;
            }
            TxId tid = tx->tid();
            reads_by_tid[tid] = {RecordedRead{oid, false, std::move(v), {}}};
            tx->Write(oid, "s" + std::to_string(launched));
            tx->Commit([&, tx, client, site, remaining, tid](Status s) {
              if (!s.ok()) {
                reads_by_tid.erase(tid);
              }
              run_one(client, site, remaining - 1);
            });
          });
        }
      };

  for (SiteId s = 0; s < 3; ++s) {
    for (int c = 0; c < 3; ++c) {
      ++in_flight;
      run_one(cluster.AddClient(s), s, kTxnsPerLoop);
    }
  }

  if (params.partition_blip) {
    // A 2-second partition in the middle of the run.
    cluster.sim().After(Seconds(1), [&] { cluster.net().SetPartitioned(0, 1, true); });
    cluster.sim().After(Seconds(3), [&] { cluster.net().SetPartitioned(0, 1, false); });
  }

  while (in_flight > 0 && cluster.sim().Step()) {
  }
  ASSERT_EQ(in_flight, 0);
  // Quiesce: stop loss, let retransmission and gossip converge everything.
  cluster.net().SetLossProbability(0);
  cluster.RunFor(Seconds(40));

  EXPECT_GT(checker.committed_count(), 100u);
  Status result = checker.Check();
  EXPECT_TRUE(result.ok()) << result.ToString();

  // Full convergence: every site committed every site's transactions.
  for (SiteId a = 0; a < 3; ++a) {
    for (SiteId b = 0; b < 3; ++b) {
      EXPECT_EQ(cluster.server(a).committed_vts().at(b),
                cluster.server(b).committed_vts().at(b))
          << "site " << a << " lagging origin " << b;
    }
  }
  // And the cset CRDT state is identical everywhere.
  for (ContainerId c = 0; c < 3; ++c) {
    ObjectId setid{c, 900};
    CountingSet reference =
        cluster.server(0).store().ReadCset(setid, cluster.server(0).committed_vts());
    for (SiteId s = 1; s < 3; ++s) {
      CountingSet other =
          cluster.server(s).store().ReadCset(setid, cluster.server(s).committed_vts());
      EXPECT_EQ(reference, other) << "cset divergence at site " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Conditions, StressTest,
                         ::testing::Values(StressParams{11, 0.0, false},
                                           StressParams{12, 0.15, false},
                                           StressParams{13, 0.0, true},
                                           StressParams{14, 0.1, true}),
                         [](const ::testing::TestParamInfo<StressParams>& info) {
                           const auto& p = info.param;
                           return "seed" + std::to_string(p.seed) + "_loss" +
                                  std::to_string(static_cast<int>(p.loss * 100)) +
                                  (p.partition_blip ? "_blip" : "_noblip");
                         });

}  // namespace
}  // namespace walter
