// Unit and property tests for the counting set CRDT (Sections 2, 3.3, 3.5).
#include "src/crdt/cset.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace walter {
namespace {

ObjectId El(uint64_t n) { return ObjectId{1, n}; }

TEST(CsetTest, EmptyByDefault) {
  CountingSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Count(El(1)), 0);
  EXPECT_FALSE(s.Contains(El(1)));
  EXPECT_TRUE(s.NonZeroElements().empty());
}

TEST(CsetTest, AddIncrementsCount) {
  CountingSet s;
  s.Add(El(7));
  EXPECT_EQ(s.Count(El(7)), 1);
  EXPECT_TRUE(s.Contains(El(7)));
  s.Add(El(7));
  EXPECT_EQ(s.Count(El(7)), 2);
}

TEST(CsetTest, RemoveDecrementsCount) {
  CountingSet s;
  s.Add(El(7), 2);
  s.Remove(El(7));
  EXPECT_EQ(s.Count(El(7)), 1);
}

// The anti-element example from Section 2: removing x from an empty cset
// yields -1 copies; a later add restores the empty cset.
TEST(CsetTest, AntiElement) {
  CountingSet s;
  s.Remove(El(3));
  EXPECT_EQ(s.Count(El(3)), -1);
  EXPECT_FALSE(s.Contains(El(3)));  // negative counts read as absent (§3.5)
  s.Add(El(3));
  EXPECT_EQ(s.Count(El(3)), 0);
  EXPECT_TRUE(s.empty());
}

// The commutativity example from Section 2: add(x), add(y), rem(x) at one site
// and rem(x), add(x), add(y) at another reach the same state {y: 1}.
TEST(CsetTest, PaperOrderingExample) {
  CountingSet a;
  a.Add(El(1));     // add(x)
  a.Add(El(2));     // add(y)
  a.Remove(El(1));  // rem(x)

  CountingSet b;
  b.Remove(El(1));  // rem(x)
  b.Add(El(1));     // add(x)
  b.Add(El(2));     // add(y)

  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Count(El(2)), 1);
  EXPECT_EQ(a.Count(El(1)), 0);
}

TEST(CsetTest, NonZeroVsPresentElements) {
  CountingSet s;
  s.Add(El(1));      // count 1: present
  s.Remove(El(2));   // count -1: non-zero but absent
  s.Add(El(3), 2);   // count 2: present
  EXPECT_EQ(s.NonZeroElements(), (std::vector<ObjectId>{El(1), El(2), El(3)}));
  EXPECT_EQ(s.PresentElements(), (std::vector<ObjectId>{El(1), El(3)}));
}

TEST(CsetTest, ApplyOpAddAndDel) {
  CountingSet s;
  s.ApplyOp(ObjectUpdate::Add(El(0), El(5)));
  s.ApplyOp(ObjectUpdate::Add(El(0), El(5)));
  s.ApplyOp(ObjectUpdate::Del(El(0), El(5)));
  EXPECT_EQ(s.Count(El(5)), 1);
}

TEST(CsetTest, SerializationRoundTrip) {
  CountingSet s;
  s.Add(El(1), 3);
  s.Remove(El(2), 5);
  s.Add(El(99));
  ByteWriter w;
  s.Serialize(&w);
  ByteReader r(w.data());
  CountingSet restored = CountingSet::Deserialize(&r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(s, restored);
}

TEST(CsetTest, SerializationIsDeterministic) {
  CountingSet a;
  CountingSet b;
  for (uint64_t i = 0; i < 50; ++i) {
    a.Add(El(i), static_cast<int64_t>(i + 1));
  }
  for (uint64_t i = 50; i-- > 0;) {
    b.Add(El(i), static_cast<int64_t>(i + 1));
  }
  ByteWriter wa;
  ByteWriter wb;
  a.Serialize(&wa);
  b.Serialize(&wb);
  EXPECT_EQ(wa.data(), wb.data());
}

TEST(CsetTest, MergeAddIsCommutative) {
  CountingSet a;
  a.Add(El(1), 2);
  a.Remove(El(2));
  CountingSet b;
  b.Add(El(2), 3);
  b.Add(El(3));

  CountingSet ab = a;
  ab.MergeAdd(b);
  CountingSet ba = b;
  ba.MergeAdd(a);
  EXPECT_EQ(ab, ba);
}

// Property: applying any permutation of the same multiset of operations
// converges to the same state — the CRDT guarantee that makes csets
// conflict-free under PSI (Section 3.3).
class CsetPermutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsetPermutationTest, RandomOpPermutationsConverge) {
  Rng rng(GetParam());
  std::vector<ObjectUpdate> ops;
  for (int i = 0; i < 200; ++i) {
    ObjectId elem = El(rng.Uniform(10));
    if (rng.Bernoulli(0.5)) {
      ops.push_back(ObjectUpdate::Add(El(0), elem));
    } else {
      ops.push_back(ObjectUpdate::Del(El(0), elem));
    }
  }
  CountingSet reference;
  for (const auto& op : ops) {
    reference.ApplyOp(op);
  }
  for (int perm = 0; perm < 5; ++perm) {
    // Fisher-Yates shuffle with the test RNG.
    std::vector<ObjectUpdate> shuffled = ops;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
    }
    CountingSet s;
    for (const auto& op : shuffled) {
      s.ApplyOp(op);
    }
    EXPECT_EQ(s, reference) << "permutation " << perm << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsetPermutationTest, ::testing::Values(1, 2, 3, 42, 1337));

// Property: partitioning operations between two "replicas" and merging
// converges to applying all operations at one place.
class CsetMergeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsetMergeTest, SplitApplyMergeConverges) {
  Rng rng(GetParam());
  CountingSet all;
  CountingSet left;
  CountingSet right;
  for (int i = 0; i < 300; ++i) {
    ObjectId elem = El(rng.Uniform(20));
    int64_t delta = rng.Bernoulli(0.5) ? 1 : -1;
    all.Add(elem, delta);
    (rng.Bernoulli(0.5) ? left : right).Add(elem, delta);
  }
  left.MergeAdd(right);
  EXPECT_EQ(left, all);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsetMergeTest, ::testing::Values(7, 8, 9, 100));

}  // namespace
}  // namespace walter
