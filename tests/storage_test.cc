// Tests for object histories, the WAL (framing, torn-tail recovery), the LRU
// cache with cset-preferring eviction, and Store checkpoint/recovery.
#include <gtest/gtest.h>

#include "src/storage/lru_cache.h"
#include "src/storage/object_history.h"
#include "src/storage/store.h"
#include "src/storage/wal.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t c, uint64_t l) { return ObjectId{c, l}; }

VectorTimestamp Vts(std::vector<uint64_t> counts) { return VectorTimestamp(std::move(counts)); }

TxRecord MakeTx(TxId tid, SiteId origin, uint64_t seqno, std::vector<ObjectUpdate> updates,
                VectorTimestamp start = {}) {
  TxRecord rec;
  rec.tid = tid;
  rec.origin = origin;
  rec.version = Version{origin, seqno};
  rec.start_vts = start.num_sites() ? start : VectorTimestamp(2);
  rec.updates = std::move(updates);
  return rec;
}

// --- ObjectHistory ---------------------------------------------------------

TEST(ObjectHistoryTest, ReadsLatestVisibleVersion) {
  ObjectHistory h;
  h.Append(Version{0, 1}, ObjectUpdate::Data(Oid(1, 1), "v1"));
  h.Append(Version{0, 2}, ObjectUpdate::Data(Oid(1, 1), "v2"));
  EXPECT_EQ(h.ReadRegular(Vts({1, 0})), "v1");
  EXPECT_EQ(h.ReadRegular(Vts({2, 0})), "v2");
  EXPECT_EQ(h.ReadRegular(Vts({0, 0})), std::nullopt);
}

TEST(ObjectHistoryTest, SnapshotIgnoresInvisibleRemoteVersions) {
  ObjectHistory h;
  h.Append(Version{0, 1}, ObjectUpdate::Data(Oid(1, 1), "local"));
  h.Append(Version{1, 5}, ObjectUpdate::Data(Oid(1, 1), "remote"));
  EXPECT_EQ(h.ReadRegular(Vts({1, 0})), "local");
  EXPECT_EQ(h.ReadRegular(Vts({1, 5})), "remote");
}

TEST(ObjectHistoryTest, UnmodifiedSince) {
  ObjectHistory h;
  h.Append(Version{0, 3}, ObjectUpdate::Data(Oid(1, 1), "x"));
  EXPECT_TRUE(h.UnmodifiedSince(Vts({3, 0})));
  EXPECT_FALSE(h.UnmodifiedSince(Vts({2, 0})));
}

// Regression: after GC folds a conflicting write into the base, the fast-commit
// conflict check must still see it. An old snapshot that predates the folded
// write is modified-since, even though entries_ is empty — otherwise a fast
// commit against that snapshot silently loses the folded update.
TEST(ObjectHistoryTest, UnmodifiedSinceSeesFoldedBase) {
  ObjectHistory h;
  h.Append(Version{0, 3}, ObjectUpdate::Data(Oid(1, 1), "conflict"));
  h.GarbageCollect(Vts({3, 0}));  // folds the write into base_version_ = (0,3)
  ASSERT_EQ(h.entry_count(), 0u);
  EXPECT_TRUE(h.UnmodifiedSince(Vts({3, 0})));
  EXPECT_FALSE(h.UnmodifiedSince(Vts({2, 0})));  // fails before the base check
}

TEST(ObjectHistoryTest, CsetFoldsVisibleOps) {
  ObjectHistory h;
  h.Append(Version{0, 1}, ObjectUpdate::Add(Oid(1, 1), Oid(9, 1)));
  h.Append(Version{1, 1}, ObjectUpdate::Add(Oid(1, 1), Oid(9, 1)));
  h.Append(Version{0, 2}, ObjectUpdate::Del(Oid(1, 1), Oid(9, 1)));
  EXPECT_EQ(h.ReadCset(Vts({1, 0})).Count(Oid(9, 1)), 1);
  EXPECT_EQ(h.ReadCset(Vts({1, 1})).Count(Oid(9, 1)), 2);
  EXPECT_EQ(h.ReadCset(Vts({2, 1})).Count(Oid(9, 1)), 1);
}

TEST(ObjectHistoryTest, GarbageCollectFoldsRegularBase) {
  ObjectHistory h;
  h.Append(Version{0, 1}, ObjectUpdate::Data(Oid(1, 1), "v1"));
  h.Append(Version{0, 2}, ObjectUpdate::Data(Oid(1, 1), "v2"));
  h.Append(Version{0, 3}, ObjectUpdate::Data(Oid(1, 1), "v3"));
  EXPECT_EQ(h.GarbageCollect(Vts({2, 0})), 2u);
  EXPECT_EQ(h.entry_count(), 1u);
  // Snapshots at/above the frontier still read correctly.
  EXPECT_EQ(h.ReadRegular(Vts({2, 0})), "v2");
  EXPECT_EQ(h.ReadRegular(Vts({3, 0})), "v3");
}

TEST(ObjectHistoryTest, GarbageCollectFoldsCsetBase) {
  ObjectHistory h;
  for (uint64_t i = 1; i <= 10; ++i) {
    h.Append(Version{0, i}, ObjectUpdate::Add(Oid(1, 1), Oid(9, i % 3)));
  }
  h.GarbageCollect(Vts({6, 0}));
  CountingSet full = h.ReadCset(Vts({10, 0}));
  int64_t total = 0;
  for (const auto& e : full.NonZeroElements()) {
    total += full.Count(e);
  }
  EXPECT_EQ(total, 10);
}

TEST(ObjectHistoryTest, RemoveVersionsFromDiscardsFailedSiteTail) {
  ObjectHistory h;
  h.Append(Version{1, 1}, ObjectUpdate::Data(Oid(1, 1), "keep"));
  h.Append(Version{1, 2}, ObjectUpdate::Data(Oid(1, 1), "drop"));
  h.Append(Version{0, 1}, ObjectUpdate::Data(Oid(1, 1), "other"));
  EXPECT_EQ(h.RemoveVersionsFrom(1, 1), 1u);
  EXPECT_EQ(h.entry_count(), 2u);
  EXPECT_EQ(h.ReadRegular(Vts({1, 2})), "other");
}

TEST(ObjectHistoryTest, SerializationRoundTrip) {
  ObjectHistory h;
  h.Append(Version{0, 1}, ObjectUpdate::Data(Oid(1, 1), "v1"));
  h.Append(Version{1, 1}, ObjectUpdate::Add(Oid(1, 1), Oid(9, 1)));
  h.GarbageCollect(Vts({1, 0}));
  ByteWriter w;
  h.Serialize(&w);
  ByteReader r(w.data());
  ObjectHistory restored = ObjectHistory::Deserialize(&r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(restored.ReadRegular(Vts({1, 0})), "v1");
  EXPECT_EQ(restored.ReadCset(Vts({1, 1})).Count(Oid(9, 1)), 1);
}

// --- WAL --------------------------------------------------------------------

TEST(WalTest, AppendReplayRoundTrip) {
  Wal wal;
  wal.Append(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "a")}));
  wal.Append(MakeTx(2, 0, 2, {ObjectUpdate::Add(Oid(1, 2), Oid(9, 9))}));
  auto replay = wal.ReplaySelf();
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].tid, 1u);
  EXPECT_EQ(replay.records[1].updates[0].kind, UpdateKind::kAdd);
}

TEST(WalTest, TornTailStopsAtLastGoodRecord) {
  Wal wal;
  wal.Append(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "a")}));
  wal.Append(MakeTx(2, 0, 2, {ObjectUpdate::Data(Oid(1, 1), "b")}));
  std::string bytes = wal.bytes();
  // Chop the final record mid-frame.
  std::string torn = bytes.substr(0, bytes.size() - 5);
  auto replay = Wal::Replay(torn);
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].tid, 1u);
}

TEST(WalTest, CorruptPayloadDetectedByCrc) {
  Wal wal;
  wal.Append(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "aaaa")}));
  std::string bytes = wal.bytes();
  bytes[bytes.size() - 2] ^= 0xff;  // flip a payload byte
  auto replay = Wal::Replay(bytes);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_TRUE(replay.records.empty());
}

TEST(WalTest, BadMagicRejected) {
  std::string garbage = "this is not a wal frame at all.....";
  auto replay = Wal::Replay(garbage);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_TRUE(replay.records.empty());
}

TEST(WalTest, TruncatePrefixKeepsLogicalOffsets) {
  Wal wal;
  size_t off1 = wal.Append(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "a")}));
  size_t off2 = wal.Append(MakeTx(2, 0, 2, {ObjectUpdate::Data(Oid(1, 1), "b")}));
  EXPECT_EQ(off1, 0u);
  wal.TruncatePrefix(off2);
  EXPECT_EQ(wal.base(), off2);
  auto replay = wal.ReplaySelf();
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].tid, 2u);
}

TEST(WalTest, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

// Exhaustive truncation matrix: cut the log at EVERY byte offset inside the
// last frame. Replay must always keep the intact prefix, flag the tear except
// at exact frame boundaries, and report valid_bytes at the boundary.
TEST(WalTest, TruncationAtEveryByteOffsetOfLastFrame) {
  Wal wal;
  wal.Append(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "first")}));
  size_t first_len = wal.Append(MakeTx(2, 0, 2, {ObjectUpdate::Data(Oid(1, 1), "second")}));
  std::string bytes = wal.bytes();
  ASSERT_GT(bytes.size(), first_len);

  for (size_t cut = first_len; cut <= bytes.size(); ++cut) {
    auto replay = Wal::Replay(bytes.substr(0, cut));
    if (cut == bytes.size()) {
      EXPECT_FALSE(replay.torn_tail) << "cut=" << cut;
      ASSERT_EQ(replay.records.size(), 2u) << "cut=" << cut;
      EXPECT_EQ(replay.valid_bytes, bytes.size());
      continue;
    }
    ASSERT_EQ(replay.records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(replay.records[0].tid, 1u) << "cut=" << cut;
    EXPECT_EQ(replay.valid_bytes, first_len) << "cut=" << cut;
    if (cut == first_len) {
      EXPECT_FALSE(replay.torn_tail) << "an exact frame boundary is not a tear";
    } else {
      EXPECT_TRUE(replay.torn_tail) << "cut=" << cut;
    }
  }
}

// Exhaustive single-bit corruption matrix over the last frame: every bit of
// the magic, length, CRC and payload fields. Replay must stop at the previous
// frame boundary every time — CRC-32 catches all single-bit payload errors,
// and header damage reads as a bad magic / impossible length / CRC mismatch.
TEST(WalTest, BitFlipAnywhereInLastFrameStopsReplayAtBoundary) {
  Wal wal;
  wal.Append(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "keep")}));
  size_t first_len = wal.Append(MakeTx(2, 0, 2, {ObjectUpdate::Data(Oid(1, 1), "rot")}));
  std::string bytes = wal.bytes();

  for (size_t pos = first_len; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string rotted = bytes;
      rotted[pos] = static_cast<char>(rotted[pos] ^ (1 << bit));
      auto replay = Wal::Replay(rotted);
      EXPECT_TRUE(replay.torn_tail) << "pos=" << pos << " bit=" << bit;
      ASSERT_EQ(replay.records.size(), 1u) << "pos=" << pos << " bit=" << bit;
      EXPECT_EQ(replay.records[0].tid, 1u);
      EXPECT_EQ(replay.valid_bytes, first_len) << "pos=" << pos << " bit=" << bit;
    }
  }
}

// Regression for the per-origin minimum index: OldestSeqno must stay correct
// (without scanning) as records append, the prefix truncates in steps, and the
// log is reseeded wholesale for recovery.
TEST(WalTest, OldestSeqnoTracksTruncationAndReseeding) {
  Wal wal;
  std::vector<size_t> offs;
  // Interleaved origins: (0,1) (1,5) (0,2) (1,6) (0,3).
  offs.push_back(wal.Append(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "a")})));
  offs.push_back(wal.Append(MakeTx(2, 1, 5, {ObjectUpdate::Data(Oid(2, 1), "b")})));
  offs.push_back(wal.Append(MakeTx(3, 0, 2, {ObjectUpdate::Data(Oid(1, 1), "c")})));
  offs.push_back(wal.Append(MakeTx(4, 1, 6, {ObjectUpdate::Data(Oid(2, 1), "d")})));
  offs.push_back(wal.Append(MakeTx(5, 0, 3, {ObjectUpdate::Data(Oid(1, 1), "e")})));
  EXPECT_EQ(wal.OldestSeqno(0), 1u);
  EXPECT_EQ(wal.OldestSeqno(1), 5u);
  EXPECT_EQ(wal.OldestSeqno(2), std::nullopt);

  wal.TruncatePrefix(offs[1]);  // drops (0,1)
  EXPECT_EQ(wal.OldestSeqno(0), 2u);
  EXPECT_EQ(wal.OldestSeqno(1), 5u);

  wal.TruncatePrefix(offs[3]);  // drops (1,5) and (0,2)
  EXPECT_EQ(wal.OldestSeqno(0), 3u);
  EXPECT_EQ(wal.OldestSeqno(1), 6u);

  wal.TruncatePrefix(wal.base() + wal.size());  // empty log
  EXPECT_EQ(wal.OldestSeqno(0), std::nullopt);
  EXPECT_EQ(wal.OldestSeqno(1), std::nullopt);

  // SeedForRecovery rebuilds the index from the seeded bytes.
  Wal donor;
  donor.Append(MakeTx(10, 1, 9, {ObjectUpdate::Data(Oid(2, 1), "x")}));
  donor.Append(MakeTx(11, 0, 4, {ObjectUpdate::Data(Oid(1, 1), "y")}));
  donor.Append(MakeTx(12, 1, 10, {ObjectUpdate::Data(Oid(2, 1), "z")}));
  wal.SeedForRecovery(donor.bytes(), 4096);
  EXPECT_EQ(wal.base(), 4096u);
  EXPECT_EQ(wal.OldestSeqno(0), 4u);
  EXPECT_EQ(wal.OldestSeqno(1), 9u);
}

// --- LruCache ---------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(300);
  cache.Insert(Oid(1, 1), ObjectType::kRegular, 100);
  cache.Insert(Oid(1, 2), ObjectType::kRegular, 100);
  cache.Insert(Oid(1, 3), ObjectType::kRegular, 100);
  EXPECT_TRUE(cache.Lookup(Oid(1, 1)));  // refresh 1
  cache.Insert(Oid(1, 4), ObjectType::kRegular, 100);
  EXPECT_TRUE(cache.Lookup(Oid(1, 1)));
  EXPECT_FALSE(cache.Lookup(Oid(1, 2)));  // LRU victim
  EXPECT_TRUE(cache.Lookup(Oid(1, 3)));
  EXPECT_TRUE(cache.Lookup(Oid(1, 4)));
}

TEST(LruCacheTest, PrefersEvictingRegularOverCset) {
  LruCache cache(300);
  cache.Insert(Oid(1, 1), ObjectType::kCset, 100);
  cache.Insert(Oid(1, 2), ObjectType::kRegular, 100);
  cache.Insert(Oid(1, 3), ObjectType::kRegular, 100);
  cache.Insert(Oid(1, 4), ObjectType::kRegular, 100);
  // The cset is older than every regular entry yet survives (Section 6).
  EXPECT_TRUE(cache.Lookup(Oid(1, 1)));
  EXPECT_FALSE(cache.Lookup(Oid(1, 2)));
}

TEST(LruCacheTest, EvictsCsetsWhenNoRegularLeft) {
  LruCache cache(200);
  cache.Insert(Oid(1, 1), ObjectType::kCset, 100);
  cache.Insert(Oid(1, 2), ObjectType::kCset, 100);
  cache.Insert(Oid(1, 3), ObjectType::kCset, 100);
  EXPECT_FALSE(cache.Lookup(Oid(1, 1)));
  EXPECT_TRUE(cache.Lookup(Oid(1, 3)));
}

TEST(LruCacheTest, OversizedEntryNotAdmitted) {
  LruCache cache(100);
  cache.Insert(Oid(1, 1), ObjectType::kRegular, 500);
  EXPECT_FALSE(cache.Lookup(Oid(1, 1)));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, TracksHitsAndMisses) {
  LruCache cache(100);
  cache.Insert(Oid(1, 1), ObjectType::kRegular, 10);
  cache.Lookup(Oid(1, 1));
  cache.Lookup(Oid(1, 2));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

// --- Store: apply/read/checkpoint/recover -----------------------------------

TEST(StoreTest, ApplyAndSnapshotRead) {
  Store store;
  store.Apply(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "a")}));
  store.Apply(MakeTx(2, 1, 1, {ObjectUpdate::Data(Oid(1, 1), "b")}));
  EXPECT_EQ(store.ReadRegular(Oid(1, 1), Vts({1, 0})), "a");
  EXPECT_EQ(store.ReadRegular(Oid(1, 1), Vts({1, 1})), "b");
  EXPECT_EQ(store.ReadRegular(Oid(9, 9), Vts({1, 1})), std::nullopt);
}

TEST(StoreTest, CheckpointRestoreRoundTrip) {
  Store store;
  store.Apply(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "a")}));
  store.Apply(MakeTx(2, 0, 2, {ObjectUpdate::Add(Oid(1, 2), Oid(9, 1))}));
  std::string checkpoint = store.SerializeCheckpoint();

  Store restored;
  restored.RestoreCheckpoint(checkpoint);
  EXPECT_EQ(restored.ReadRegular(Oid(1, 1), Vts({2, 0})), "a");
  EXPECT_EQ(restored.ReadCset(Oid(1, 2), Vts({2, 0})).Count(Oid(9, 1)), 1);
  EXPECT_EQ(restored.checkpoint_frontier(), store.wal().size());
}

TEST(StoreTest, RecoverReplaysWalTailAfterCheckpoint) {
  Store store;
  store.Apply(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "a")}));
  std::string checkpoint = store.SerializeCheckpoint();
  store.Apply(MakeTx(2, 0, 2, {ObjectUpdate::Data(Oid(1, 1), "b")}));

  Store restored;
  auto result = restored.Recover(checkpoint, store.wal().bytes());
  EXPECT_EQ(result.records_replayed, 1u);
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(restored.ReadRegular(Oid(1, 1), Vts({2, 0})), "b");
  EXPECT_EQ(restored.ReadRegular(Oid(1, 1), Vts({1, 0})), "a");
}

TEST(StoreTest, RecoverFromWalOnlyNoCheckpoint) {
  Store store;
  store.Apply(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "a")}));
  store.Apply(MakeTx(2, 0, 2, {ObjectUpdate::Data(Oid(1, 2), "b")}));

  Store restored;
  auto result = restored.Recover("", store.wal().bytes());
  EXPECT_EQ(result.records_replayed, 2u);
  EXPECT_EQ(restored.ReadRegular(Oid(1, 2), Vts({2, 0})), "b");
}

TEST(StoreTest, RecoverStopsAtTornTail) {
  Store store;
  store.Apply(MakeTx(1, 0, 1, {ObjectUpdate::Data(Oid(1, 1), "a")}));
  store.Apply(MakeTx(2, 0, 2, {ObjectUpdate::Data(Oid(1, 1), "b")}));
  std::string bytes = store.wal().bytes();
  std::string torn = bytes.substr(0, bytes.size() - 3);

  Store restored;
  auto result = restored.Recover("", torn);
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.records_replayed, 1u);
  EXPECT_EQ(restored.ReadRegular(Oid(1, 1), Vts({1, 0})), "a");
}

TEST(StoreTest, GarbageCollectReducesEntries) {
  Store store;
  for (uint64_t i = 1; i <= 20; ++i) {
    store.Apply(MakeTx(i, 0, i, {ObjectUpdate::Data(Oid(1, 1), "v" + std::to_string(i))}));
  }
  size_t folded = store.GarbageCollect(Vts({15, 0}));
  EXPECT_EQ(folded, 15u);
  EXPECT_EQ(store.ReadRegular(Oid(1, 1), Vts({15, 0})), "v15");
  EXPECT_EQ(store.ReadRegular(Oid(1, 1), Vts({20, 0})), "v20");
}

}  // namespace
}  // namespace walter
