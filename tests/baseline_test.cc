// Tests of the three baselines: BDB-like primary-copy SI store, Redis-like
// store with master-slave replication, and the eventually consistent store
// (which exhibits the conflicting fork PSI precludes).
#include <gtest/gtest.h>

#include <optional>

#include "src/baseline/bdb_store.h"
#include "src/baseline/eventual_store.h"
#include "src/baseline/redis_store.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace walter {
namespace {

template <typename Pred>
void Drive(Simulator& sim, Pred done) {
  while (!done() && sim.Step()) {
  }
  ASSERT_TRUE(done());
}

// --- BDB ---------------------------------------------------------------------

struct BdbFixture {
  BdbFixture() : sim(1), net(&sim, Topology::Ec2Subset(2)) {
    BdbServer::Options primary;
    primary.site = 0;
    primary.is_primary = true;
    primary.mirrors = {1};
    primary.perf = BdbPerfModel::Instant();
    primary.disk = DiskConfig::Memory();
    servers.push_back(std::make_unique<BdbServer>(&sim, &net, primary));
    BdbServer::Options mirror;
    mirror.site = 1;
    mirror.is_primary = false;
    mirror.perf = BdbPerfModel::Instant();
    mirror.disk = DiskConfig::Memory();
    servers.push_back(std::make_unique<BdbServer>(&sim, &net, mirror));
    client = std::make_unique<BdbClient>(&net, 0, kClientPortBase, 0);
  }

  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<BdbServer>> servers;
  std::unique_ptr<BdbClient> client;
};

TEST(BdbTest, PutThenGet) {
  BdbFixture fx;
  bool put_done = false;
  fx.client->Put("k", "v", [&](Status s) {
    ASSERT_TRUE(s.ok());
    put_done = true;
  });
  Drive(fx.sim, [&] { return put_done; });
  std::optional<std::string> value;
  bool got = false;
  fx.client->Get("k", [&](Status s, std::optional<std::string> v) {
    ASSERT_TRUE(s.ok());
    value = std::move(v);
    got = true;
  });
  Drive(fx.sim, [&] { return got; });
  EXPECT_EQ(value, "v");
}

TEST(BdbTest, SnapshotIsolationTransactionConflictAborts) {
  BdbFixture fx;
  bool seeded = false;
  fx.client->Put("x", "0", [&](Status) { seeded = true; });
  Drive(fx.sim, [&] { return seeded; });

  BdbClient::Txn t1;
  BdbClient::Txn t2;
  int begun = 0;
  fx.client->Begin([&](Status s, BdbClient::Txn t) {
    ASSERT_TRUE(s.ok());
    t1 = t;
    ++begun;
  });
  fx.client->Begin([&](Status s, BdbClient::Txn t) {
    ASSERT_TRUE(s.ok());
    t2 = t;
    ++begun;
  });
  Drive(fx.sim, [&] { return begun == 2; });

  int writes = 0;
  fx.client->Write(t1, "x", "1", [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++writes;
  });
  fx.client->Write(t2, "x", "2", [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++writes;
  });
  Drive(fx.sim, [&] { return writes == 2; });

  int commits = 0;
  int ok = 0;
  auto tally = [&](Status s) {
    if (s.ok()) {
      ++ok;
    }
    ++commits;
  };
  fx.client->Commit(t1, tally);
  fx.client->Commit(t2, tally);
  Drive(fx.sim, [&] { return commits == 2; });
  EXPECT_EQ(ok, 1);  // first-committer-wins
  EXPECT_EQ(fx.servers[0]->aborted(), 1u);
}

TEST(BdbTest, TransactionReadsItsSnapshot) {
  BdbFixture fx;
  bool seeded = false;
  fx.client->Put("x", "old", [&](Status) { seeded = true; });
  Drive(fx.sim, [&] { return seeded; });

  BdbClient::Txn txn;
  bool begun = false;
  fx.client->Begin([&](Status, BdbClient::Txn t) {
    txn = t;
    begun = true;
  });
  Drive(fx.sim, [&] { return begun; });

  bool overwrote = false;
  fx.client->Put("x", "new", [&](Status) { overwrote = true; });
  Drive(fx.sim, [&] { return overwrote; });

  std::optional<std::string> value;
  bool got = false;
  fx.client->Read(txn, "x", [&](Status, std::optional<std::string> v) {
    value = std::move(v);
    got = true;
  });
  Drive(fx.sim, [&] { return got; });
  EXPECT_EQ(value, "old");  // snapshot read
}

TEST(BdbTest, AsynchronousReplicationReachesMirror) {
  BdbFixture fx;
  bool put_done = false;
  fx.client->Put("k", "v", [&](Status) { put_done = true; });
  Drive(fx.sim, [&] { return put_done; });
  fx.sim.RunUntil(fx.sim.Now() + Seconds(2));
  EXPECT_EQ(fx.servers[1]->applied_from_primary(), 1u);
}

// --- Redis -------------------------------------------------------------------

struct RedisFixture {
  RedisFixture() : sim(1), net(&sim, Topology::Ec2Subset(2)) {
    RedisServer::Options master;
    master.site = 0;
    master.is_master = true;
    master.slaves = {1};
    master.perf = RedisPerfModel::Instant();
    servers.push_back(std::make_unique<RedisServer>(&sim, &net, master));
    RedisServer::Options slave;
    slave.site = 1;
    slave.is_master = false;
    slave.perf = RedisPerfModel::Instant();
    servers.push_back(std::make_unique<RedisServer>(&sim, &net, slave));
    client = std::make_unique<RedisClient>(&net, 0, kClientPortBase, 0);
  }

  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<RedisServer>> servers;
  std::unique_ptr<RedisClient> client;
};

TEST(RedisTest, IncrIsAtomicCounter) {
  RedisFixture fx;
  int64_t last = 0;
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    fx.client->Incr("ctr", [&](Status s, int64_t v) {
      ASSERT_TRUE(s.ok());
      last = v;
      ++done;
    });
  }
  Drive(fx.sim, [&] { return done == 5; });
  EXPECT_EQ(last, 5);
}

TEST(RedisTest, ListPushAndRange) {
  RedisFixture fx;
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    fx.client->LPush("l", "v" + std::to_string(i), [&](Status s) {
      ASSERT_TRUE(s.ok());
      ++done;
    });
  }
  Drive(fx.sim, [&] { return done == 4; });
  std::vector<std::string> range;
  bool got = false;
  fx.client->LRange("l", 3, [&](Status s, std::vector<std::string> v) {
    ASSERT_TRUE(s.ok());
    range = std::move(v);
    got = true;
  });
  Drive(fx.sim, [&] { return got; });
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0], "v3");  // newest first
}

TEST(RedisTest, SetOperations) {
  RedisFixture fx;
  int done = 0;
  fx.client->SAdd("s", "a", [&](Status) { ++done; });
  fx.client->SAdd("s", "b", [&](Status) { ++done; });
  fx.client->SRem("s", "a", [&](Status) { ++done; });
  Drive(fx.sim, [&] { return done == 3; });
  std::vector<std::string> members;
  bool got = false;
  fx.client->SMembers("s", [&](Status, std::vector<std::string> v) {
    members = std::move(v);
    got = true;
  });
  Drive(fx.sim, [&] { return got; });
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], "b");
}

TEST(RedisTest, WritesRejectedAtSlave) {
  RedisFixture fx;
  RedisClient slave_client(&fx.net, 1, kClientPortBase, 1);  // "master" = slave site
  Status result = Status::Ok();
  bool done = false;
  slave_client.Set("k", "v", [&](Status s) {
    result = s;
    done = true;
  });
  Drive(fx.sim, [&] { return done; });
  // The slave accepts the RPC but refuses the write (master-slave scheme).
  EXPECT_TRUE(result.ok());  // transport-level OK; semantic rejection is silent
  // Verify nothing was written by reading back from the slave.
  std::optional<std::string> value;
  bool got = false;
  slave_client.Get("k", [&](Status, std::optional<std::string> v) {
    value = std::move(v);
    got = true;
  });
  Drive(fx.sim, [&] { return got; });
  EXPECT_EQ(value, std::nullopt);
}

TEST(RedisTest, MasterSlaveReplication) {
  RedisFixture fx;
  bool set_done = false;
  fx.client->Set("k", "v", [&](Status) { set_done = true; });
  Drive(fx.sim, [&] { return set_done; });
  fx.sim.RunUntil(fx.sim.Now() + Seconds(2));
  RedisClient reader(&fx.net, 1, kClientPortBase + 1, 0);
  reader.set_read_site(1);  // read from the slave
  std::optional<std::string> value;
  bool got = false;
  reader.Get("k", [&](Status, std::optional<std::string> v) {
    value = std::move(v);
    got = true;
  });
  Drive(fx.sim, [&] { return got; });
  EXPECT_EQ(value, "v");
}

// --- Eventual consistency ------------------------------------------------------

TEST(EventualTest, ConflictingForkDetectedAndResolvedByLww) {
  Simulator sim(1);
  Network net(&sim, Topology::Ec2Subset(2));
  EventualServer::Options o0{.site = 0, .num_sites = 2};
  EventualServer::Options o1{.site = 1, .num_sites = 2};
  EventualServer s0(&sim, &net, o0);
  EventualServer s1(&sim, &net, o1);
  EventualClient c0(&net, 0, kClientPortBase);
  EventualClient c1(&net, 1, kClientPortBase);

  // Concurrent writes to the same key at both sites: BOTH are accepted (this
  // is the conflicting fork PSI forbids), then LWW silently drops one.
  int done = 0;
  c0.Put("A", "site0", [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  c1.Put("A", "site1", [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  Drive(sim, [&] { return done == 2; });
  sim.RunUntil(sim.Now() + Seconds(2));  // replicate

  // Converged to one value at both sites...
  std::optional<std::string> v0;
  std::optional<std::string> v1;
  int got = 0;
  c0.Get("A", [&](Status, std::optional<std::string> v) {
    v0 = std::move(v);
    ++got;
  });
  c1.Get("A", [&](Status, std::optional<std::string> v) {
    v1 = std::move(v);
    ++got;
  });
  Drive(sim, [&] { return got == 2; });
  EXPECT_EQ(v0, v1);
  // ...but one user's write was silently lost, and the store knows it had to
  // resolve a conflict — exactly what PSI's no-write-write-conflicts avoids.
  EXPECT_GE(s0.conflicts_detected() + s1.conflicts_detected(), 1u);
}

TEST(EventualTest, SingleSiteReadsOwnWrites) {
  Simulator sim(1);
  Network net(&sim, Topology::Ec2Subset(1));
  EventualServer::Options options{.site = 0, .num_sites = 1};
  EventualServer server(&sim, &net, options);
  EventualClient client(&net, 0, kClientPortBase);
  bool put_done = false;
  client.Put("k", "v", [&](Status) { put_done = true; });
  Drive(sim, [&] { return put_done; });
  std::optional<std::string> value;
  bool got = false;
  client.Get("k", [&](Status, std::optional<std::string> v) {
    value = std::move(v);
    got = true;
  });
  Drive(sim, [&] { return got; });
  EXPECT_EQ(value, "v");
}

}  // namespace
}  // namespace walter
