// Tests of the configuration service: replicated container metadata, lease
// enforcement at Walter servers, and the full aggressive site-removal and
// re-integration flow of Section 5.7.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "src/config/config_service.h"
#include "src/core/cluster.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t c, uint64_t l) { return ObjectId{c, l}; }

struct ConfiguredCluster {
  explicit ConfiguredCluster(size_t n) {
    ClusterOptions options;
    options.num_sites = n;
    options.server.perf = PerfModel::Instant();
    options.server.disk = DiskConfig::Memory();
    options.server.gossip_interval = 0;
    cluster = std::make_unique<Cluster>(options);
    for (SiteId s = 0; s < n; ++s) {
      configs.push_back(std::make_unique<ConfigService>(&cluster->sim(), &cluster->net(), s, n,
                                                        &cluster->directory(s),
                                                        &cluster->server(s)));
    }
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<ConfigService>> configs;
};

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   std::string value) {
  Tx tx(client);
  tx.Write(oid, std::move(value));
  Status result = Status::Internal("unfinished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return result;
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid) {
  Tx tx(client);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status s, std::optional<std::string> v) {
    EXPECT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return value;
}

TEST(ConfigServiceTest, UpsertContainerReachesEverySite) {
  ConfiguredCluster fx(3);
  bool done = false;
  fx.configs[0]->ProposeUpsertContainer(ContainerInfo{42, 2, {}}, [&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  fx.cluster->RunFor(Seconds(5));
  ASSERT_TRUE(done);
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(fx.cluster->directory(s).Get(42).preferred_site, 2u) << "site " << s;
  }
}

TEST(ConfigServiceTest, LeaseChecksGateFastCommit) {
  ConfiguredCluster fx(2);
  // Move container 0's preferred site from 0 to 1.
  bool done = false;
  fx.configs[0]->ProposeUpsertContainer(ContainerInfo{0, 1, {}}, [&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  fx.cluster->RunFor(Seconds(5));
  ASSERT_TRUE(done);

  // Site 0 no longer holds the lease for container 0: its writes slow-commit
  // through site 1; site 1 fast-commits.
  WalterClient* c0 = fx.cluster->AddClient(0);
  WalterClient* c1 = fx.cluster->AddClient(1);
  ASSERT_TRUE(CommitWrite(*fx.cluster, c0, Oid(0, 1), "from0").ok());
  EXPECT_EQ(fx.cluster->server(0).stats().slow_commits, 1u);
  ASSERT_TRUE(CommitWrite(*fx.cluster, c1, Oid(0, 2), "from1").ok());
  EXPECT_EQ(fx.cluster->server(1).stats().fast_commits, 1u);
}

TEST(ConfigServiceTest, HoldsLeaseFollowsConfiguration) {
  ConfiguredCluster fx(2);
  EXPECT_TRUE(fx.configs[0]->HoldsLease(0));   // default: container 0 -> site 0
  EXPECT_FALSE(fx.configs[1]->HoldsLease(0));
  EXPECT_TRUE(fx.configs[1]->HoldsLease(1));
}

TEST(ConfigServiceTest, AggressiveSiteRemovalEndToEnd) {
  ConfiguredCluster fx(3);
  Cluster& cluster = *fx.cluster;
  WalterClient* c0 = cluster.AddClient(0);

  // Two committed transactions at site 0; only the first propagates (site 0 is
  // then isolated, so the second never leaves).
  ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, 1), "survives").ok());
  cluster.RunFor(Seconds(2));
  cluster.net().IsolateSite(0, true);
  ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, 2), "lost").ok());
  cluster.RunFor(Seconds(1));

  // A survivor coordinates the removal; Paxos still has a 2/3 majority.
  SiteRecoveryCoordinator coordinator(
      &cluster.sim(), {&cluster.server(0), &cluster.server(1), &cluster.server(2)},
      fx.configs[1].get());
  // Exclude the failed server from the survivor list by marking it crashed.
  cluster.server(0).Crash();
  bool removed = false;
  coordinator.RemoveFailedSite(0, /*new_preferred=*/1, [&](Status s) {
    EXPECT_TRUE(s.ok());
    removed = true;
  });
  cluster.RunFor(Seconds(10));
  ASSERT_TRUE(removed);

  // Both survivors: surviving transaction present, lost one discarded.
  for (SiteId s : {SiteId{1}, SiteId{2}}) {
    WalterClient* c = cluster.AddClient(s);
    EXPECT_EQ(ReadOnce(cluster, c, Oid(0, 1)), "survives") << "site " << s;
    EXPECT_EQ(ReadOnce(cluster, c, Oid(0, 2)), std::nullopt) << "site " << s;
    EXPECT_FALSE(fx.configs[s]->IsActive(0));
  }

  // Container 0 is re-homed to site 1: writes there fast-commit again.
  WalterClient* c1 = cluster.AddClient(1);
  uint64_t fast_before = cluster.server(1).stats().fast_commits;
  ASSERT_TRUE(CommitWrite(cluster, c1, Oid(0, 3), "rehomed").ok());
  EXPECT_GT(cluster.server(1).stats().fast_commits, fast_before);
}

// Step 2 of the aggressive recovery: survivors received different prefixes of
// the failed site's sequence (here site 1 has 1-5, site 2 only 1-3 because of
// a partition); the coordinator must fill site 2's gap from site 1 so both
// survivors end up with the full surviving prefix 1-5.
TEST(ConfigServiceTest, RemoveFailedSiteFillsSurvivorGaps) {
  ConfiguredCluster fx(3);
  Cluster& cluster = *fx.cluster;
  WalterClient* c0 = cluster.AddClient(0);

  // Seqnos 1-3 at site 0 propagate everywhere.
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, i), "v" + std::to_string(i)).ok());
  }
  cluster.RunFor(Seconds(2));
  ASSERT_EQ(cluster.server(1).got_vts().at(0), 3u);
  ASSERT_EQ(cluster.server(2).got_vts().at(0), 3u);

  // Seqnos 4-5 reach only site 1 (site 2 is partitioned from site 0).
  cluster.net().SetPartitioned(0, 2, true);
  for (int i = 4; i <= 5; ++i) {
    ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, i), "v" + std::to_string(i)).ok());
  }
  cluster.RunFor(Seconds(2));
  ASSERT_EQ(cluster.server(1).got_vts().at(0), 5u);
  ASSERT_EQ(cluster.server(2).got_vts().at(0), 3u);

  // Site 0 dies; a survivor coordinates its removal.
  cluster.server(0).Crash();
  SiteRecoveryCoordinator coordinator(
      &cluster.sim(), {&cluster.server(0), &cluster.server(1), &cluster.server(2)},
      fx.configs[1].get());
  bool removed = false;
  coordinator.RemoveFailedSite(0, /*new_preferred=*/1, [&](Status s) {
    EXPECT_TRUE(s.ok());
    removed = true;
  });
  cluster.RunFor(Seconds(10));
  ASSERT_TRUE(removed);
  EXPECT_EQ(fx.configs[1]->removed_through(0), 5u);

  // Both survivors hold the complete surviving prefix 1-5 and can read it.
  for (SiteId s : {SiteId{1}, SiteId{2}}) {
    EXPECT_EQ(cluster.server(s).got_vts().at(0), 5u) << "site " << s;
    EXPECT_EQ(cluster.server(s).committed_vts().at(0), 5u) << "site " << s;
    WalterClient* c = cluster.AddClient(s);
    for (int i = 1; i <= 5; ++i) {
      EXPECT_EQ(ReadOnce(cluster, c, Oid(0, i)), "v" + std::to_string(i))
          << "site " << s << " seqno " << i;
    }
  }
}

TEST(ConfigServiceTest, ReintegrationRestoresPreferredSite) {
  ConfiguredCluster fx(3);
  Cluster& cluster = *fx.cluster;

  // Remove site 0 (no lost transactions in this variant).
  cluster.net().IsolateSite(0, true);
  cluster.server(0).Crash();
  SiteRecoveryCoordinator coordinator(
      &cluster.sim(), {&cluster.server(0), &cluster.server(1), &cluster.server(2)},
      fx.configs[1].get());
  bool removed = false;
  coordinator.RemoveFailedSite(0, 1, [&](Status) { removed = true; });
  cluster.RunFor(Seconds(10));
  ASSERT_TRUE(removed);
  EXPECT_EQ(cluster.directory(1).Get(0).preferred_site, 1u);

  // Site 0 comes back: replacement server from its durable image, then a
  // re-integration proposal clears the remap.
  cluster.net().IsolateSite(0, false);
  cluster.ReplaceServer(0);
  bool reintegrated = false;
  fx.configs[1]->ProposeReintegrateSite(0, [&](Status s) {
    EXPECT_TRUE(s.ok());
    reintegrated = true;
  });
  cluster.RunFor(Seconds(10));
  ASSERT_TRUE(reintegrated);
  EXPECT_TRUE(fx.configs[1]->IsActive(0));
  EXPECT_EQ(cluster.directory(1).Get(0).preferred_site, 0u);
  EXPECT_EQ(cluster.directory(2).Get(0).preferred_site, 0u);
}

}  // namespace
}  // namespace walter
