// Failure injection: server crash and replacement (WAL/checkpoint recovery,
// propagation resumption, Section 5.7/6), message loss and partitions healed
// by retransmission and gossip, and aggressive site-failure recovery.
#include <gtest/gtest.h>

#include <optional>

#include "src/core/cluster.h"
#include "src/psi/checker.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t c, uint64_t l) { return ObjectId{c, l}; }

ClusterOptions LogicOptions(size_t num_sites) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   std::string value) {
  Tx tx(client);
  tx.Write(oid, std::move(value));
  Status result = Status::Internal("unfinished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return result;
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid) {
  Tx tx(client);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status s, std::optional<std::string> v) {
    EXPECT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return value;
}

TEST(FailureTest, ReplacementServerRecoversFromWal) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, i), "v" + std::to_string(i)).ok());
  }
  cluster.server(0).Crash();
  cluster.ReplaceServer(0);

  WalterClient* client2 = cluster.AddClient(0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ReadOnce(cluster, client2, Oid(1, i)), "v" + std::to_string(i));
  }
  // The replacement continues assigning fresh sequence numbers.
  ASSERT_TRUE(CommitWrite(cluster, client2, Oid(1, 100), "after").ok());
  EXPECT_EQ(cluster.server(0).committed_vts().at(0), 6u);
}

TEST(FailureTest, ReplacementServerRecoversFromCheckpointPlusTail) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, i), "cp" + std::to_string(i)).ok());
  }
  cluster.server(0).Checkpoint();  // truncates the WAL prefix
  for (int i = 4; i < 8; ++i) {
    ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, i), "cp" + std::to_string(i)).ok());
  }
  cluster.server(0).Crash();
  cluster.ReplaceServer(0);

  WalterClient* client2 = cluster.AddClient(0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ReadOnce(cluster, client2, Oid(1, i)), "cp" + std::to_string(i));
  }
}

TEST(FailureTest, ReplacementResumesPropagation) {
  // Commit at site 0, crash it before any propagation batch departs, replace
  // it — the replacement must finish replicating (Section 5.7).
  ClusterOptions options = LogicOptions(2);
  Cluster cluster(options);
  cluster.net().SetPartitioned(0, 1, true);  // hold propagation back

  WalterClient* client = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 1), "survivor").ok());
  cluster.RunFor(Seconds(1));
  EXPECT_EQ(cluster.server(1).committed_vts().at(0), 0u);

  cluster.server(0).Crash();
  cluster.net().SetPartitioned(0, 1, false);
  cluster.ReplaceServer(0);
  cluster.RunFor(Seconds(5));

  EXPECT_EQ(cluster.server(1).committed_vts().at(0), 1u);
  WalterClient* remote = cluster.AddClient(1);
  EXPECT_EQ(ReadOnce(cluster, remote, Oid(0, 1)), "survivor");
}

TEST(FailureTest, UnflushedCommitsDoNotSurviveCrash) {
  // With a real (slow) disk, a commit whose flush has not completed is not in
  // the durable image: write-ahead logging semantics.
  ClusterOptions options = LogicOptions(1);
  options.server.disk = DiskConfig::WriteCacheOff();  // ~8ms flush
  Cluster cluster(options);
  WalterClient* client = cluster.AddClient(0);

  Tx tx(client);
  tx.Write(Oid(1, 1), "maybe-lost");
  bool committed = false;
  tx.Commit([&](Status s) { committed = s.ok(); });
  // Let the request reach the server but crash before the flush completes.
  cluster.RunFor(Millis(2));
  EXPECT_FALSE(committed);  // client never got the commit ack
  cluster.server(0).Crash();
  cluster.ReplaceServer(0);

  WalterClient* client2 = cluster.AddClient(0);
  EXPECT_EQ(ReadOnce(cluster, client2, Oid(1, 1)), std::nullopt);
}

TEST(FailureTest, PartitionDelaysVisibilityThenHeals) {
  ClusterOptions options = LogicOptions(3);
  options.server.gossip_interval = Millis(500);  // gossip heals loss
  options.server.f = 1;  // paper default: disaster-safe at f+1 = 2 sites (§4.4)
  Cluster cluster(options);
  WalterClient* writer = cluster.AddClient(0);

  cluster.net().SetPartitioned(0, 1, true);
  ASSERT_TRUE(CommitWrite(cluster, writer, Oid(0, 1), "x").ok());
  cluster.RunFor(Seconds(3));
  EXPECT_EQ(cluster.server(1).committed_vts().at(0), 0u);  // cut off
  EXPECT_EQ(cluster.server(2).committed_vts().at(0), 1u);  // still reachable
  // Not globally visible while a site is unreachable.
  EXPECT_EQ(cluster.server(0).globally_visible_through(), 0u);

  cluster.net().SetPartitioned(0, 1, false);
  cluster.RunFor(Seconds(5));
  EXPECT_EQ(cluster.server(1).committed_vts().at(0), 1u);
  EXPECT_EQ(cluster.server(0).globally_visible_through(), 1u);
}

TEST(FailureTest, MessageLossConvergesViaRetransmission) {
  ClusterOptions options = LogicOptions(3);
  options.server.gossip_interval = Millis(500);
  options.server.resend_timeout = Millis(800);
  Cluster cluster(options);
  cluster.net().SetLossProbability(0.3);

  WalterClient* c0 = cluster.AddClient(0);
  WalterClient* c1 = cluster.AddClient(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, i), "a" + std::to_string(i)).ok());
    ASSERT_TRUE(CommitWrite(cluster, c1, Oid(1, i), "b" + std::to_string(i)).ok());
  }
  cluster.RunFor(Seconds(30));
  cluster.net().SetLossProbability(0);
  cluster.RunFor(Seconds(10));

  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.server(s).committed_vts().at(0), 10u) << "site " << s;
    EXPECT_EQ(cluster.server(s).committed_vts().at(1), 10u) << "site " << s;
  }
  EXPECT_EQ(cluster.server(0).globally_visible_through(), 10u);
}

TEST(FailureTest, SlowCommitAbortsWhenPreferredSiteUnreachable) {
  ClusterOptions options = LogicOptions(2);
  options.server.resend_timeout = Millis(500);
  Cluster cluster(options);
  cluster.net().SetPartitioned(0, 1, true);

  WalterClient* client = cluster.AddClient(0);
  // Container 1 prefers site 1, which is unreachable: prepare times out.
  Status s = CommitWrite(cluster, client, Oid(1, 1), "doomed");
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  // Availability for local-preferred writes is unaffected (Section 4.4).
  EXPECT_TRUE(CommitWrite(cluster, client, Oid(0, 1), "fine").ok());
}

TEST(FailureTest, AggressiveSiteRecoveryDiscardsNonSurvivingTxns) {
  // Site 0 commits two transactions; only the first reaches site 1 before
  // site 0 dies. Aggressive recovery (Section 5.7) keeps the survivor and
  // discards the unpropagated transaction at every remaining site.
  ClusterOptions options = LogicOptions(3);
  Cluster cluster(options);
  WalterClient* client = cluster.AddClient(0);

  ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 1), "survives").ok());
  cluster.RunFor(Seconds(2));  // first txn fully propagated
  cluster.net().IsolateSite(0, true);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 2), "lost").ok());
  cluster.RunFor(Seconds(1));

  // Site 0 is declared failed. Survivors: everything sites 1/2 received.
  uint64_t survive_through = std::max(cluster.server(1).got_vts().at(0),
                                      cluster.server(2).got_vts().at(0));
  EXPECT_EQ(survive_through, 1u);
  cluster.server(1).DiscardNonSurviving(0, survive_through);
  cluster.server(2).DiscardNonSurviving(0, survive_through);
  // Reassign the failed site's containers to site 1 (the config service's job;
  // done directly here).
  cluster.UpsertContainerEverywhere(ContainerInfo{0, 1, {}});

  WalterClient* c1 = cluster.AddClient(1);
  EXPECT_EQ(ReadOnce(cluster, c1, Oid(0, 1)), "survives");
  EXPECT_EQ(ReadOnce(cluster, c1, Oid(0, 2)), std::nullopt);
  // Writes to the re-homed container fast-commit at the new preferred site.
  ASSERT_TRUE(CommitWrite(cluster, c1, Oid(0, 3), "new-home").ok());
  EXPECT_GE(cluster.server(1).stats().fast_commits, 1u);
}

TEST(FailureTest, OrphanedPrepareLocksReleasedByTerminationProtocol) {
  // A coordinator crashes after its prepare locked objects at the preferred
  // site but before deciding. The lock holder's termination protocol queries
  // the (replacement) coordinator, learns the transaction is unknown, and
  // releases the lock — restoring write availability at the preferred site.
  ClusterOptions options = LogicOptions(2);
  options.server.gossip_interval = Millis(400);  // drives the stale-lock sweep
  options.server.resend_timeout = Millis(300);
  Cluster cluster(options);

  // Site 0 coordinates a slow commit on an object preferred at site 1, but its
  // votes never come back (we cut the return path by crashing site 0 as soon
  // as the prepare is sent).
  WalterClient* c0 = cluster.AddClient(0);
  Tx doomed(c0);
  doomed.Write(Oid(1, 1), "never-decided");
  doomed.Commit([](Status) {});
  // Run just long enough for the prepare to lock the object at site 1.
  cluster.RunFor(Millis(60));
  cluster.server(0).Crash();
  cluster.RunFor(Millis(100));

  // The object is locked at site 1: local writes there abort.
  WalterClient* c1 = cluster.AddClient(1);
  EXPECT_EQ(CommitWrite(cluster, c1, Oid(1, 1), "blocked").code(), StatusCode::kAborted);

  // A replacement server comes up; the sweep queries it, learns the tid is
  // unknown, and releases the orphaned lock.
  cluster.ReplaceServer(0);
  cluster.RunFor(Seconds(3));
  EXPECT_TRUE(CommitWrite(cluster, c1, Oid(1, 1), "unblocked").ok());
  EXPECT_EQ(ReadOnce(cluster, c1, Oid(1, 1)), "unblocked");
}

TEST(FailureTest, CommittedSlowCommitLockSurvivesTerminationQuery) {
  // If the coordinator DID commit, the termination protocol must keep the lock
  // until the transaction propagates — releasing early would let a conflicting
  // fast commit slip in under a committed transaction.
  ClusterOptions options = LogicOptions(2);
  options.server.gossip_interval = Millis(400);
  options.server.resend_timeout = Millis(300);
  Cluster cluster(options);

  WalterClient* c0 = cluster.AddClient(0);
  // Let the 2PC prepare complete (one VA-CA round trip), then hold propagation
  // back for two seconds so the committed transaction's lock lingers at site 1
  // long enough for the stale-lock sweep to query the coordinator.
  cluster.sim().After(Millis(95), [&] { cluster.net().SetPartitioned(0, 1, true); });
  cluster.sim().After(Seconds(2), [&] { cluster.net().SetPartitioned(0, 1, false); });
  Status s = CommitWrite(cluster, c0, Oid(1, 1), "cross");
  ASSERT_TRUE(s.ok());

  // During the partition, the lock at site 1 must survive the termination
  // query (the coordinator answers "committed"): a conflicting local write
  // keeps aborting rather than overwriting a committed transaction.
  cluster.RunFor(Millis(1500));
  WalterClient* c1 = cluster.AddClient(1);
  EXPECT_EQ(CommitWrite(cluster, c1, Oid(1, 1), "usurper").code(), StatusCode::kAborted);

  cluster.RunFor(Seconds(5));  // heal + propagate: lock released the right way
  EXPECT_EQ(ReadOnce(cluster, c1, Oid(1, 1)), "cross");
}

TEST(FailureTest, PsiHoldsUnderMessageLoss) {
  ClusterOptions options = LogicOptions(3);
  options.server.gossip_interval = Millis(500);
  options.server.resend_timeout = Millis(800);
  options.seed = 99;
  Cluster cluster(options);
  cluster.net().SetLossProbability(0.2);

  PsiChecker checker(3);
  cluster.ObserveCommits([&](SiteId site, const TxRecord& rec) {
    checker.OnApply(site, rec.tid);
    if (site == rec.origin) {
      RecordedTx recorded;
      recorded.record = rec;
      checker.OnCommit(std::move(recorded));
    }
  });

  std::vector<WalterClient*> clients;
  for (SiteId s = 0; s < 3; ++s) {
    clients.push_back(cluster.AddClient(s));
  }
  Rng rng(7);
  for (int round = 0; round < 15; ++round) {
    for (SiteId s = 0; s < 3; ++s) {
      // Local-preferred write (fast commit).
      ASSERT_TRUE(CommitWrite(cluster, clients[s], Oid(s, rng.Uniform(10)),
                              "r" + std::to_string(round))
                      .ok());
    }
    cluster.RunFor(Millis(200));
  }
  cluster.RunFor(Seconds(30));
  cluster.net().SetLossProbability(0);
  cluster.RunFor(Seconds(10));

  Status result = checker.Check();
  EXPECT_TRUE(result.ok()) << result.ToString();
  for (SiteId s = 0; s < 3; ++s) {
    for (SiteId o = 0; o < 3; ++o) {
      EXPECT_EQ(cluster.server(s).committed_vts().at(o), 15u)
          << "site " << s << " origin " << o;
    }
  }
}

}  // namespace
}  // namespace walter
