// Disaster-safe durability semantics (Section 4.4): the f parameter, quorums
// that must include the preferred site, partial replica sets, and the
// conservative-vs-aggressive recovery choice they enable.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/cluster.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t c, uint64_t l) { return ObjectId{c, l}; }

ClusterOptions LogicOptions(size_t num_sites, int f) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  o.server.f = f;
  return o;
}

// Commits one write at `site` and returns whether it became disaster-safe
// within the window.
bool BecomesDurable(Cluster& cluster, SiteId site, const ObjectId& oid,
                    SimDuration window = Seconds(3)) {
  WalterClient* client = cluster.AddClient(site);
  Tx tx(client);
  tx.Write(oid, "d");
  // Heap flag: the durable watch outlives this frame when the notification
  // only arrives after the caller heals the network.
  auto durable = std::make_shared<bool>(false);
  Tx::CommitOptions opts;
  opts.on_durable = [durable] { *durable = true; };
  bool committed = false;
  tx.Commit([&](Status s) { committed = s.ok(); }, opts);
  while (!committed && cluster.sim().Step()) {
  }
  EXPECT_TRUE(committed);
  cluster.RunFor(window);
  return *durable;
}

TEST(DurabilityTest, SingleSiteIsImmediatelyDurable) {
  Cluster cluster(LogicOptions(1, 0));
  EXPECT_TRUE(BecomesDurable(cluster, 0, Oid(0, 1), Millis(10)));
  EXPECT_EQ(cluster.server(0).globally_visible_through(), 1u);
}

TEST(DurabilityTest, FOneNeedsOneRemoteReplica) {
  Cluster cluster(LogicOptions(3, 1));
  // Cut one remote site: the other still completes the f+1 = 2 quorum.
  cluster.net().SetPartitioned(0, 2, true);
  EXPECT_TRUE(BecomesDurable(cluster, 0, Oid(0, 1)));
}

TEST(DurabilityTest, FOneStallsWithAllRemotesCut) {
  Cluster cluster(LogicOptions(3, 1));
  cluster.net().IsolateSite(0, true);
  EXPECT_FALSE(BecomesDurable(cluster, 0, Oid(0, 1)));
  EXPECT_EQ(cluster.server(0).ds_durable_through(), 0u);
  // Healing completes durability for the stalled transaction (retransmission).
  cluster.net().IsolateSite(0, false);
  cluster.RunFor(Seconds(5));
  EXPECT_EQ(cluster.server(0).ds_durable_through(), 1u);
}

TEST(DurabilityTest, FTwoNeedsTwoRemoteReplicas) {
  Cluster cluster(LogicOptions(3, 2));
  cluster.net().SetPartitioned(0, 2, true);  // only one remote reachable
  EXPECT_FALSE(BecomesDurable(cluster, 0, Oid(0, 1)));
  cluster.net().SetPartitioned(0, 2, false);
  cluster.RunFor(Seconds(5));
  EXPECT_EQ(cluster.server(0).ds_durable_through(), 1u);
}

TEST(DurabilityTest, QuorumMustIncludePreferredSite) {
  // A transaction written at a NON-preferred site (slow commit) only becomes
  // disaster-safe once the object's preferred site has a copy, regardless of
  // how many other sites do (Section 5.6: "f+1 sites replicating each object
  // including the object's preferred site").
  Cluster cluster(LogicOptions(3, 1));
  // Container 1 prefers site 1. Cut 0-1 AFTER commit so the prepare works but
  // the data cannot reach the preferred site; site 2 still gets a copy.
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.Write(Oid(1, 1), "needs-preferred");
  bool durable = false;
  bool committed = false;
  Tx::CommitOptions opts;
  opts.on_durable = [&] { durable = true; };
  tx.Commit([&](Status s) { committed = s.ok(); }, opts);
  while (!committed && cluster.sim().Step()) {
  }
  ASSERT_TRUE(committed);
  cluster.net().SetPartitioned(0, 1, true);
  cluster.RunFor(Seconds(3));
  // Site 2 acked (f+1 = 2 counting the origin), but the preferred site hasn't.
  EXPECT_EQ(cluster.server(2).got_vts().at(0), 1u);
  EXPECT_FALSE(durable);
  cluster.net().SetPartitioned(0, 1, false);
  cluster.RunFor(Seconds(5));
  EXPECT_TRUE(durable);
}

TEST(DurabilityTest, PartialReplicaSetBoundsTheQuorum) {
  // Container 7 replicated only at {0, 1} with preferred site 0: with f = 2
  // the quorum clamps to the replica count (2), so site 1 alone suffices.
  Cluster cluster(LogicOptions(3, 2));
  cluster.UpsertContainerEverywhere(ContainerInfo{7, 0, {0, 1}});
  EXPECT_TRUE(BecomesDurable(cluster, 0, Oid(7, 1)));
}

TEST(DurabilityTest, CsetOnlyTransactionsFollowTheSameQuorum) {
  Cluster cluster(LogicOptions(2, 1));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.SetAdd(Oid(0, 50), Oid(9, 9));
  bool durable = false;
  bool committed = false;
  Tx::CommitOptions opts;
  opts.on_durable = [&] { durable = true; };
  tx.Commit([&](Status s) { committed = s.ok(); }, opts);
  while (!committed && cluster.sim().Step()) {
  }
  ASSERT_TRUE(committed);
  cluster.RunFor(Seconds(2));
  EXPECT_TRUE(durable);
}

TEST(DurabilityTest, VisibilityImpliesDurability) {
  Cluster cluster(LogicOptions(3, 1));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.Write(Oid(0, 1), "v");
  int order = 0;
  int durable_at = 0;
  int visible_at = 0;
  Tx::CommitOptions opts;
  opts.on_durable = [&] { durable_at = ++order; };
  opts.on_visible = [&] { visible_at = ++order; };
  bool committed = false;
  tx.Commit([&](Status s) { committed = s.ok(); }, opts);
  while (!committed && cluster.sim().Step()) {
  }
  cluster.RunFor(Seconds(3));
  ASSERT_GT(durable_at, 0);
  ASSERT_GT(visible_at, 0);
  EXPECT_LT(durable_at, visible_at);  // durable strictly before visible
  EXPECT_GE(cluster.server(0).globally_visible_through(), 1u);
}

TEST(DurabilityTest, ConservativeChoiceWritesBlockWhilePreferredSiteDown) {
  // Section 4.4's conservative option: with the preferred site down and no
  // reconfiguration, writes to its objects keep aborting — a deliberate loss
  // of availability in exchange for never losing committed transactions.
  ClusterOptions options = LogicOptions(2, 1);
  options.server.resend_timeout = Millis(400);
  Cluster cluster(options);
  cluster.server(1).Crash();

  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.Write(Oid(1, 1), "blocked");  // container 1 prefers the dead site
  Status result = Status::Ok();
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  EXPECT_EQ(result.code(), StatusCode::kAborted);
  // Local-preferred writes remain fully available.
  Tx ok_tx(client);
  ok_tx.Write(Oid(0, 1), "fine");
  bool ok_done = false;
  ok_tx.Commit([&](Status s) {
    EXPECT_TRUE(s.ok());
    ok_done = true;
  });
  while (!ok_done && cluster.sim().Step()) {
  }
}

}  // namespace
}  // namespace walter
