#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>

namespace walter {

namespace {

struct Window {
  SimTime start = 0;
  SimTime end = 0;
  bool Contains(SimTime t) const { return t >= start && t < end; }
};

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions options;
  if (const char* env = std::getenv("WALTER_BENCH_JOBS")) {
    options.jobs = std::max(1, std::atoi(env));
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs = std::max(1, std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      options.jobs = std::max(1, std::atoi(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      options.json_path = argv[i] + 7;
    }
  }
  return options;
}

void BenchJson::Set(const std::string& key, double value) {
  entries_.emplace_back(key, JsonNumber(value));
}

void BenchJson::Set(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') {
      quoted += '\\';
    }
    quoted += c;
  }
  quoted += '"';
  entries_.emplace_back(key, std::move(quoted));
}

std::string BenchJson::Render() const {
  std::string out = "{\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += "  \"" + entries_[i].first + "\": " + entries_[i].second;
    out += i + 1 < entries_.size() ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

void BenchJson::SetAll(const MetricsRegistry& metrics, const std::string& prefix) {
  for (const MetricPoint& p : metrics.Snapshot()) {
    Set(prefix + MetricsRegistry::JsonKey(p), p.value);
  }
}

bool BenchJson::WriteIfRequested(const std::string& path) const {
  if (path.empty()) {
    return true;
  }
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write JSON to %s\n", path.c_str());
    return false;
  }
  f << Render();
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return static_cast<bool>(f);
}

LoadResult ClosedLoopLoad::Run(SimDuration warmup, SimDuration measure) {
  auto result = std::make_shared<LoadResult>();
  auto window = std::make_shared<Window>();
  window->start = sim_->Now() + warmup;
  window->end = window->start + measure;
  auto stopped = std::make_shared<bool>(false);

  for (auto& factory : factories_) {
    // The loop body captures itself weakly (a strong self-capture would be a
    // shared_ptr cycle and leak the closure); each in-flight operation's
    // completion callback holds the strong reference instead.
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [this, factory, result, window, stopped,
             weak_loop = std::weak_ptr<std::function<void()>>(loop)]() {
      if (*stopped) {
        return;
      }
      SimTime begin = sim_->Now();
      auto self = weak_loop.lock();
      factory([this, begin, result, window, stopped, self](bool ok) {
        SimTime now = sim_->Now();
        if (window->Contains(begin)) {
          if (ok) {
            ++result->completed;
            result->latency.Add(static_cast<double>(now - begin));
          } else {
            ++result->failed;
          }
        }
        if (!*stopped && self) {
          (*self)();
        }
      });
    };
    (*loop)();
  }

  sim_->RunUntil(window->end);
  *stopped = true;
  // Drain in-flight operations so their callbacks do not dangle.
  sim_->RunUntil(window->end + Seconds(5));
  result->seconds = ToSeconds(measure);
  return std::move(*result);
}

LoadResult OpenLoopLoad::Run(SimDuration warmup, SimDuration measure) {
  auto result = std::make_shared<LoadResult>();
  auto window = std::make_shared<Window>();
  window->start = sim_->Now() + warmup;
  window->end = window->start + measure;
  auto stopped = std::make_shared<bool>(false);
  double mean_gap_us = 1e6 / rate_;

  // Weak self-capture (see ClosedLoopLoad::Run); the scheduled timer event
  // holds the strong reference that keeps the arrival closure alive.
  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [this, result, window, stopped, mean_gap_us,
              weak_arrival = std::weak_ptr<std::function<void()>>(arrival)]() {
    if (*stopped) {
      return;
    }
    SimTime begin = sim_->Now();
    factory_([this, begin, result, window](bool ok) {
      if (window->Contains(begin)) {
        if (ok) {
          ++result->completed;
          result->latency.Add(static_cast<double>(sim_->Now() - begin));
        } else {
          ++result->failed;
        }
      }
    });
    SimDuration gap = static_cast<SimDuration>(sim_->rng().Exponential(mean_gap_us));
    auto self = weak_arrival.lock();
    sim_->After(std::max<SimDuration>(gap, 1), [self]() {
      if (self) {
        (*self)();
      }
    });
  };
  (*arrival)();

  sim_->RunUntil(window->end);
  *stopped = true;
  sim_->RunUntil(window->end + Seconds(5));
  result->seconds = ToSeconds(measure);
  return std::move(*result);
}

void Populate(Cluster& cluster, WalterClient* client, ContainerId container, uint64_t count,
              size_t value_size, size_t batch) {
  std::string value(value_size, 'x');
  uint64_t next = 0;
  while (next < count) {
    size_t in_flight = 0;
    for (size_t b = 0; b < batch && next < count; ++b, ++next) {
      auto tx = std::make_shared<Tx>(client);
      tx->Write(ObjectId{container, next}, value);
      ++in_flight;
      tx->Commit([tx, &in_flight](Status) { --in_flight; });
    }
    while (in_flight > 0 && cluster.sim().Step()) {
    }
  }
}

OpFactory ReadTxFactory(WalterClient* client, ContainerId container, uint64_t keys,
                        size_t tx_size, std::shared_ptr<Rng> rng) {
  return [client, container, keys, tx_size, rng](std::function<void(bool)> done) {
    auto tx = std::make_shared<Tx>(client);
    auto remaining = std::make_shared<size_t>(tx_size);
    auto finish = std::make_shared<std::function<void(bool)>>(std::move(done));
    // One step per read; the step closure captures itself weakly (a strong
    // self-capture would be a cycle leaking every transaction) while each
    // in-flight read callback holds the strong reference.
    auto step = std::make_shared<std::function<void()>>();
    *step = [tx, container, keys, rng, remaining, finish,
             weak_step = std::weak_ptr<std::function<void()>>(step)]() {
      if (*remaining == 0) {
        tx->Commit([tx, finish](Status s) { (*finish)(s.ok()); });
        return;
      }
      --*remaining;
      ObjectId oid{container, rng->Uniform(keys)};
      auto self = weak_step.lock();
      tx->Read(oid, [self, finish](Status s, std::optional<std::string>) {
        if (s.ok() && self) {
          (*self)();
        } else {
          (*finish)(false);
        }
      });
    };
    (*step)();
  };
}

OpFactory WriteTxFactory(WalterClient* client, ContainerId container, uint64_t keys,
                         size_t tx_size, size_t value_size, std::shared_ptr<Rng> rng) {
  return [client, container, keys, tx_size, value_size, rng](std::function<void(bool)> done) {
    auto tx = std::make_shared<Tx>(client);
    std::string value(value_size, 'w');
    // Distinct keys so a transaction never conflicts with itself.
    uint64_t base = rng->Uniform(keys);
    for (size_t i = 0; i < tx_size; ++i) {
      tx->Write(ObjectId{container, (base + i * 7919) % keys}, value);
    }
    tx->Commit([tx, done = std::move(done)](Status s) { done(s.ok()); });
  };
}

void PrintCdf(const std::string& name, LatencyRecorder& recorder, size_t points) {
  std::printf("  CDF %s (latency_ms cum_fraction):\n", name.c_str());
  for (const auto& [latency_us, fraction] : recorder.Cdf(points)) {
    std::printf("    %10.2f  %.3f\n", latency_us / 1000.0, fraction);
  }
}

std::string Ktps(double ops_per_sec) { return TablePrinter::Fmt(ops_per_sec / 1000.0, 1); }

}  // namespace walter
