// Section 8.4 — Fast commit on cset objects.
//
// Setup: 4 sites; each transaction modifies two 100-byte regular objects at
// the local preferred site and adds an id to a cset whose preferred site is
// remote — yet commits with the fast protocol (no cross-site coordination).
//
// Paper's result: commit latency distribution matches the EC2 curve of
// Figure 18; aggregate throughput is 26 Ktps (vs 52 Ktps for single-write
// transactions) because each cset transaction issues 4 RPCs instead of 1.
#include <cstdio>
#include <memory>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr uint64_t kKeys = 10'000;
constexpr int kClientsPerSite = 64;

OpFactory CsetTxFactory(WalterClient* client, size_t num_sites, std::shared_ptr<Rng> rng) {
  SiteId site = client->site();
  return [client, site, num_sites, rng](std::function<void(bool)> done) {
    auto tx = std::make_shared<Tx>(client);
    std::string value(100, 'c');
    // Two regular objects in the local-preferred container.
    tx->Write(ObjectId{site, rng->Uniform(kKeys)}, value);
    tx->Write(ObjectId{site, rng->Uniform(kKeys)}, value);
    // One cset add in a container preferred at another site.
    SiteId remote = (site + 1 + rng->Uniform(num_sites - 1)) % num_sites;
    tx->SetAdd(ObjectId{remote, 100'000 + rng->Uniform(64)},
               ObjectId{99, rng->Next() % 1'000'000});
    tx->Commit([tx, done = std::move(done)](Status s) { done(s.ok()); });
  };
}

}  // namespace
}  // namespace walter

int main() {
  using namespace walter;
  std::printf("=== Section 8.4: fast commit on cset objects (4 sites) ===\n\n");

  ClusterOptions options;
  options.num_sites = 4;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  Cluster cluster(options);
  for (SiteId s = 0; s < 4; ++s) {
    Populate(cluster, cluster.AddClient(s), s, kKeys, 100, 20);
  }

  auto rng = std::make_shared<Rng>(84);
  ClosedLoopLoad load(&cluster.sim());
  for (SiteId s = 0; s < 4; ++s) {
    for (int c = 0; c < kClientsPerSite; ++c) {
      load.AddClient(CsetTxFactory(cluster.AddClient(s), 4, rng));
    }
  }
  LoadResult result = load.Run(Millis(300), Seconds(1.5));

  uint64_t slow = 0;
  uint64_t fast = 0;
  for (SiteId s = 0; s < 4; ++s) {
    slow += cluster.server(s).stats().slow_commits;
    fast += cluster.server(s).stats().fast_commits;
  }

  std::printf("aggregate throughput: %.1f Ktps   (paper: 26 Ktps)\n",
              result.ThroughputKops());
  std::printf("fast commits: %llu, slow commits: %llu  (paper: cset txns never slow-commit)\n",
              static_cast<unsigned long long>(fast), static_cast<unsigned long long>(slow));
  std::printf("commit latency: p50=%.1fms p99=%.1fms p99.9=%.1fms (paper: matches Fig 18 EC2)\n\n",
              result.latency.Percentile(50) / 1000.0, result.latency.Percentile(99) / 1000.0,
              result.latency.Percentile(99.9) / 1000.0);
  PrintCdf("cset-commit", result.latency);
  std::printf("Expected shape: ~1/2 the single-write throughput at 4 RPCs/transaction,\n"
              "zero slow commits despite updating remote-preferred csets.\n");
  return 0;
}
