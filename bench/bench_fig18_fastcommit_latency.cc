// Figure 18 — Fast commit latency CDF on EC2 and on the private cluster with
// write caching on/off.
//
// Setup per Section 8.3: write-only transactions of 5 objects, issued at a
// rate achieving ~70% of maximal throughput; latency measured from issuing the
// commit to the server acknowledging it.
//
// Paper's result: EC2 99p = 20 ms, 99.9p = 27 ms; write-caching off keeps the
// 99.9p under 90 ms. The tail comes from server queueing plus group-commit
// flush waits.
#include <cstdio>
#include <memory>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr uint64_t kKeys = 20'000;
constexpr int kProbeClients = 64;

LatencyRecorder RunConfig(const char* name, PerfModel perf, DiskConfig disk,
                          const char* paper_note) {
  ClusterOptions options;
  options.num_sites = 4;
  options.server.perf = perf;
  options.server.disk = disk;
  Cluster cluster(options);
  WalterClient* setup = cluster.AddClient(0);
  Populate(cluster, setup, 0, kKeys, 100, 20);

  auto rng = std::make_shared<Rng>(17);

  // Phase 1: measure the maximum throughput with a closed loop.
  double max_tput = 0;
  {
    ClosedLoopLoad probe(&cluster.sim());
    for (int c = 0; c < kProbeClients; ++c) {
      probe.AddClient(WriteTxFactory(cluster.AddClient(0), 0, kKeys, 5, 100, rng));
    }
    max_tput = probe.Run(Millis(300), Seconds(1)).Throughput();
  }

  // Phase 2: open loop at 70% of max; collect the latency distribution.
  OpenLoopLoad load(&cluster.sim(), 0.7 * max_tput,
                    WriteTxFactory(cluster.AddClient(0), 0, kKeys, 5, 100, rng));
  LoadResult result = load.Run(Millis(300), Seconds(4));

  std::printf("%-18s max=%.1f Ktps, at 70%%: p50=%.1fms p90=%.1fms p99=%.1fms p99.9=%.1fms"
              "   (paper: %s)\n",
              name, max_tput / 1000.0, result.latency.Percentile(50) / 1000.0,
              result.latency.Percentile(90) / 1000.0, result.latency.Percentile(99) / 1000.0,
              result.latency.Percentile(99.9) / 1000.0, paper_note);
  return std::move(result.latency);
}

}  // namespace
}  // namespace walter

int main() {
  using namespace walter;
  std::printf("=== Figure 18: fast commit latency (write-only tx of 5 objects, 70%% load) ===\n\n");
  LatencyRecorder ec2 =
      RunConfig("EC2", PerfModel::Ec2(), DiskConfig::Ec2(), "99p=20ms, 99.9p=27ms");
  LatencyRecorder on = RunConfig("Write-caching on", PerfModel::PrivateCluster(),
                                 DiskConfig::WriteCacheOn(), "lowest curve");
  LatencyRecorder off = RunConfig("Write-caching off", PerfModel::PrivateCluster(),
                                  DiskConfig::WriteCacheOff(), "99.9p < 90ms");
  std::printf("\n");
  PrintCdf("EC2", ec2);
  PrintCdf("write-caching-on", on);
  PrintCdf("write-caching-off", off);
  std::printf("Expected shape: no cross-site coordination anywhere; write-cache-off is the\n"
              "slowest curve but still commits locally in tens of milliseconds.\n");
  return 0;
}
