// Figure 17 — Aggregate transaction throughput on EC2 vs number of sites.
//
// Three workloads, each with transaction sizes 1 and 5 over random 100-byte
// objects replicated at all sites, preferred sites assigned evenly:
//   read-only      (left plot: scales linearly, ~157 Ktps at 4 sites, size 1)
//   write-only     (middle plot: grows sub-linearly; 52 Ktps at 4 sites, size 1)
//   90% read / 10% write mixed (right plot: ~80 Ktps at 4 sites for
//                               read-size 1 / write-size 5)
#include <cstdio>
#include <memory>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr uint64_t kKeysPerSite = 10'000;
constexpr int kClientsPerSite = 64;
constexpr SimDuration kWarmup = Millis(300);
constexpr SimDuration kMeasure = Seconds(1.2);

struct Workload {
  double read_fraction;  // per transaction: read-only with this probability
  size_t read_size;
  size_t write_size;
};

double RunWorkload(size_t num_sites, const Workload& w, uint64_t seed) {
  ClusterOptions options;
  options.num_sites = num_sites;
  options.seed = seed;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  Cluster cluster(options);

  // Objects live in one container per site (preferred sites spread evenly);
  // populate each container at its preferred site.
  for (SiteId s = 0; s < num_sites; ++s) {
    WalterClient* setup = cluster.AddClient(s);
    Populate(cluster, setup, /*container=*/s, kKeysPerSite, 100, 20);
  }

  ClosedLoopLoad load(&cluster.sim());
  auto rng = std::make_shared<Rng>(seed * 31 + 7);
  for (SiteId s = 0; s < num_sites; ++s) {
    for (int c = 0; c < kClientsPerSite; ++c) {
      WalterClient* client = cluster.AddClient(s);
      // Writers write to their local-preferred container (fast commit); the
      // mixed workload flips a coin per transaction.
      OpFactory reads = ReadTxFactory(client, rng->Uniform(num_sites), kKeysPerSite,
                                      w.read_size, rng);
      OpFactory writes = WriteTxFactory(client, s, kKeysPerSite, w.write_size, 100, rng);
      load.AddClient([rng, w, reads = std::move(reads), writes = std::move(writes)](
                         std::function<void(bool)> done) {
        if (rng->NextDouble() < w.read_fraction) {
          reads(std::move(done));
        } else {
          writes(std::move(done));
        }
      });
    }
  }
  return load.Run(kWarmup, kMeasure).ThroughputKops();
}

}  // namespace
}  // namespace walter

int main() {
  using walter::TablePrinter;
  std::printf("=== Figure 17: aggregate throughput on EC2, 1-4 sites ===\n\n");

  std::printf("-- Read-only workload (paper: size 1 scales ~linearly to 157 Ktps @4) --\n");
  {
    TablePrinter table({"sites", "read-tx size=1 (Ktps)", "read-tx size=5 (Ktps)"});
    for (size_t sites = 1; sites <= 4; ++sites) {
      double k1 = walter::RunWorkload(sites, {1.0, 1, 1}, 100 + sites);
      double k5 = walter::RunWorkload(sites, {1.0, 5, 1}, 200 + sites);
      table.AddRow({std::to_string(sites), TablePrinter::Fmt(k1), TablePrinter::Fmt(k5)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("-- Write-only workload (paper: size 1 grows sub-linearly to 52 Ktps @4) --\n");
  {
    TablePrinter table({"sites", "write-tx size=1 (Ktps)", "write-tx size=5 (Ktps)"});
    for (size_t sites = 1; sites <= 4; ++sites) {
      double k1 = walter::RunWorkload(sites, {0.0, 1, 1}, 300 + sites);
      double k5 = walter::RunWorkload(sites, {0.0, 1, 5}, 400 + sites);
      table.AddRow({std::to_string(sites), TablePrinter::Fmt(k1), TablePrinter::Fmt(k5)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("-- 90%% read / 10%% write mixed workload (paper: ~80 Ktps @4 for r1/w5) --\n");
  {
    TablePrinter table({"sites", "r1/w1 (Ktps)", "r1/w5 (Ktps)", "r5/w1 (Ktps)",
                        "r5/w5 (Ktps)"});
    for (size_t sites = 1; sites <= 4; ++sites) {
      double a = walter::RunWorkload(sites, {0.9, 1, 1}, 500 + sites);
      double b = walter::RunWorkload(sites, {0.9, 1, 5}, 600 + sites);
      double c = walter::RunWorkload(sites, {0.9, 5, 1}, 700 + sites);
      double d = walter::RunWorkload(sites, {0.9, 5, 5}, 800 + sites);
      table.AddRow({std::to_string(sites), TablePrinter::Fmt(a), TablePrinter::Fmt(b),
                    TablePrinter::Fmt(c), TablePrinter::Fmt(d)});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Expected shape: reads scale linearly with sites; writes grow sub-linearly\n"
      "(replication work grows with sites); size-5 transactions ~1/5 of size-1.\n");
  return 0;
}
