// Figure 17 — Aggregate transaction throughput on EC2 vs number of sites.
//
// Three workloads, each with transaction sizes 1 and 5 over random 100-byte
// objects replicated at all sites, preferred sites assigned evenly:
//   read-only      (left plot: scales linearly, ~157 Ktps at 4 sites, size 1)
//   write-only     (middle plot: grows sub-linearly; 52 Ktps at 4 sites, size 1)
//   90% read / 10% write mixed (right plot: ~80 Ktps at 4 sites for
//                               read-size 1 / write-size 5)
//
// Every (workload, sites, seed) cell is an independent simulation, so the
// sweep fans out to --jobs worker threads; the merged output is byte-identical
// for every job count. --quick runs a reduced matrix for CI smoke tests.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr uint64_t kKeysPerSite = 10'000;
constexpr int kClientsPerSite = 64;

struct Workload {
  double read_fraction;  // per transaction: read-only with this probability
  size_t read_size;
  size_t write_size;
};

struct Cell {
  size_t sites;
  Workload workload;
  uint64_t seed;
  std::string json_key;
};

struct CellResult {
  double ktps = 0;
  MetricsRegistry metrics;  // per-site protocol + transport counters
};

CellResult RunWorkload(size_t num_sites, const Workload& w, uint64_t seed, bool quick) {
  SimDuration warmup = quick ? Millis(100) : Millis(300);
  SimDuration measure = quick ? Millis(400) : Seconds(1.2);

  ClusterOptions options;
  options.num_sites = num_sites;
  options.seed = seed;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  Cluster cluster(options);

  // Objects live in one container per site (preferred sites spread evenly);
  // populate each container at its preferred site.
  for (SiteId s = 0; s < num_sites; ++s) {
    WalterClient* setup = cluster.AddClient(s);
    Populate(cluster, setup, /*container=*/s, kKeysPerSite, 100, 20);
  }

  ClosedLoopLoad load(&cluster.sim());
  auto rng = std::make_shared<Rng>(seed * 31 + 7);
  for (SiteId s = 0; s < num_sites; ++s) {
    for (int c = 0; c < kClientsPerSite; ++c) {
      WalterClient* client = cluster.AddClient(s);
      // Writers write to their local-preferred container (fast commit); the
      // mixed workload flips a coin per transaction.
      OpFactory reads = ReadTxFactory(client, rng->Uniform(num_sites), kKeysPerSite,
                                      w.read_size, rng);
      OpFactory writes = WriteTxFactory(client, s, kKeysPerSite, w.write_size, 100, rng);
      load.AddClient([rng, w, reads = std::move(reads), writes = std::move(writes)](
                         std::function<void(bool)> done) {
        if (rng->NextDouble() < w.read_fraction) {
          reads(std::move(done));
        } else {
          writes(std::move(done));
        }
      });
    }
  }
  LoadResult result = load.Run(warmup, measure);
  CellResult cell;
  cell.ktps = result.ThroughputKops();
  result.ExportMetrics(cell.metrics);
  cluster.ExportMetrics(cell.metrics);
  return cell;
}

}  // namespace
}  // namespace walter

int main(int argc, char** argv) {
  using walter::Cell;
  using walter::TablePrinter;
  walter::BenchOptions opt = walter::ParseBenchArgs(argc, argv);
  size_t max_sites = opt.quick ? 2 : 4;

  // Build the full sweep as an ordered cell list; seeds match the original
  // per-table loops so results stay comparable across commits.
  std::vector<Cell> cells;
  auto add = [&](const char* tag, double rf, size_t rs, size_t ws, uint64_t seed_base) {
    for (size_t sites = 1; sites <= max_sites; ++sites) {
      cells.push_back({sites,
                       {rf, rs, ws},
                       seed_base + sites,
                       std::string(tag) + "_sites" + std::to_string(sites)});
    }
  };
  add("read_s1", 1.0, 1, 1, 100);
  add("read_s5", 1.0, 5, 1, 200);
  add("write_s1", 0.0, 1, 1, 300);
  add("write_s5", 0.0, 1, 5, 400);
  add("mix_r1w1", 0.9, 1, 1, 500);
  add("mix_r1w5", 0.9, 1, 5, 600);
  add("mix_r5w1", 0.9, 5, 1, 700);
  add("mix_r5w5", 0.9, 5, 5, 800);

  walter::ParallelRunner runner(opt.jobs);
  std::vector<walter::CellResult> results =
      runner.Map<walter::CellResult>(cells.size(), [&](size_t i) {
        const Cell& c = cells[i];
        return walter::RunWorkload(c.sites, c.workload, c.seed, opt.quick);
      });
  // cells are laid out as 8 consecutive site-sweeps of max_sites rows each.
  auto at = [&](size_t sweep, size_t sites) {
    return results[sweep * max_sites + sites - 1].ktps;
  };

  std::printf("=== Figure 17: aggregate throughput on EC2, 1-%zu sites ===\n\n", max_sites);

  std::printf("-- Read-only workload (paper: size 1 scales ~linearly to 157 Ktps @4) --\n");
  {
    TablePrinter table({"sites", "read-tx size=1 (Ktps)", "read-tx size=5 (Ktps)"});
    for (size_t sites = 1; sites <= max_sites; ++sites) {
      table.AddRow({std::to_string(sites), TablePrinter::Fmt(at(0, sites)),
                    TablePrinter::Fmt(at(1, sites))});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("-- Write-only workload (paper: size 1 grows sub-linearly to 52 Ktps @4) --\n");
  {
    TablePrinter table({"sites", "write-tx size=1 (Ktps)", "write-tx size=5 (Ktps)"});
    for (size_t sites = 1; sites <= max_sites; ++sites) {
      table.AddRow({std::to_string(sites), TablePrinter::Fmt(at(2, sites)),
                    TablePrinter::Fmt(at(3, sites))});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("-- 90%% read / 10%% write mixed workload (paper: ~80 Ktps @4 for r1/w5) --\n");
  {
    TablePrinter table({"sites", "r1/w1 (Ktps)", "r1/w5 (Ktps)", "r5/w1 (Ktps)",
                        "r5/w5 (Ktps)"});
    for (size_t sites = 1; sites <= max_sites; ++sites) {
      table.AddRow({std::to_string(sites), TablePrinter::Fmt(at(4, sites)),
                    TablePrinter::Fmt(at(5, sites)), TablePrinter::Fmt(at(6, sites)),
                    TablePrinter::Fmt(at(7, sites))});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Expected shape: reads scale linearly with sites; writes grow sub-linearly\n"
      "(replication work grows with sites); size-5 transactions ~1/5 of size-1.\n");

  walter::BenchJson json;
  json.Set("bench", std::string("fig17_throughput"));
  json.Set("quick", opt.quick ? 1.0 : 0.0);
  for (size_t i = 0; i < cells.size(); ++i) {
    json.Set(cells[i].json_key + "_ktps", results[i].ktps);
  }
  // Full counter registry for the flagship write cell (largest site count):
  // per-site commit/abort/propagation counters plus transport totals.
  size_t flagship = 2 * max_sites + (max_sites - 1);  // write_s1 at max sites
  json.SetAll(results[flagship].metrics, cells[flagship].json_key + ".");
  return json.WriteIfRequested(opt.json_path) ? 0 : 1;
}
