// Figure 22 — Latency of WaltSocial operations under moderate load.
//
// Setup per Section 8.6: operations issue their reads/writes to the local
// Walter server in series and commit with the fast protocol (all csets / local
// preferred sites), so latency has no cross-site component.
//
// Paper's result: operations complete in a few milliseconds; the
// 99.9-percentile of every operation is below 50 ms; read-info (fewest
// objects) is fastest.
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "src/apps/waltsocial/waltsocial.h"

namespace walter {
namespace {

constexpr uint64_t kUsers = 20'000;

}  // namespace
}  // namespace walter

int main() {
  using namespace walter;
  std::printf("=== Figure 22: WaltSocial operation latency (moderate load) ===\n\n");

  ClusterOptions options;
  options.num_sites = 4;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  Cluster cluster(options);
  auto rng = std::make_shared<Rng>(22);

  // Seed some users.
  {
    WaltSocial seeder(cluster.AddClient(0));
    for (UserId u = 0; u < 4000; u += 4) {
      bool done = false;
      seeder.CreateUser(u, "u", [&](Status) { done = true; });
      while (!done && cluster.sim().Step()) {
      }
    }
  }

  // Background load: self-perpetuating read-info loops keep the servers
  // moderately busy while we measure (the paper measures under moderate load).
  std::vector<std::unique_ptr<WaltSocial>> background;
  for (SiteId s = 0; s < 4; ++s) {
    for (int c = 0; c < 20; ++c) {
      background.push_back(std::make_unique<WaltSocial>(cluster.AddClient(s)));
      WaltSocial* bg_app = background.back().get();
      auto loop = std::make_shared<std::function<void()>>();
      *loop = [bg_app, rng, loop] {
        bg_app->ReadInfo(rng->Uniform(kUsers),
                         [loop](Status, WaltSocial::UserInfo) { (*loop)(); });
      };
      (*loop)();
    }
  }

  // Measured foreground: one open loop per operation type at site 0.
  WaltSocial app(cluster.AddClient(0));
  auto measure = [&](const char* name,
                     std::function<void(std::function<void(bool)>)> op) -> LatencyRecorder {
    OpenLoopLoad load(&cluster.sim(), 500, op);
    LoadResult result = load.Run(Millis(300), Seconds(4));
    std::printf("%-14s p50=%.1fms p90=%.1fms p99=%.1fms p99.9=%.1fms\n", name,
                result.latency.Percentile(50) / 1000.0, result.latency.Percentile(90) / 1000.0,
                result.latency.Percentile(99) / 1000.0,
                result.latency.Percentile(99.9) / 1000.0);
    return std::move(result.latency);
  };

  auto local_user = [&] { return rng->Uniform(kUsers / 4) * 4; };  // homed at site 0

  LatencyRecorder read_info;
  LatencyRecorder befriend;
  LatencyRecorder status_update;
  LatencyRecorder post_message;

  read_info = measure("read-info", [&](std::function<void(bool)> done) {
    app.ReadInfo(rng->Uniform(kUsers),
                 [done = std::move(done)](Status s, WaltSocial::UserInfo) { done(s.ok()); });
  });
  befriend = measure("befriend", [&](std::function<void(bool)> done) {
    app.Befriend(local_user(), rng->Uniform(kUsers),
                 [done = std::move(done)](Status s) { done(s.ok()); });
  });
  status_update = measure("status-update", [&](std::function<void(bool)> done) {
    app.StatusUpdate(local_user(), "s", [done = std::move(done)](Status s) { done(s.ok()); });
  });
  post_message = measure("post-message", [&](std::function<void(bool)> done) {
    app.PostMessage(local_user(), rng->Uniform(kUsers), "m",
                    [done = std::move(done)](Status s) { done(s.ok()); });
  });

  std::printf("\n");
  PrintCdf("read-info", read_info);
  PrintCdf("befriend", befriend);
  PrintCdf("status-update", status_update);
  PrintCdf("post-message", post_message);
  std::printf("Expected shape: all operations finish in a few ms (no cross-site\n"
              "communication); 99.9p < 50ms; read-info fastest.\n");
  return 0;
}
