// Figure 20 — Latency of slow commit and of reaching disaster-safe durability.
//
// Setup per Section 8.5: 4 sites; write-only transactions issued at VA with 2,
// 3 or 4 objects, each object preferred at a different site (VA, CA, IE, SG in
// that order), so commit runs two-phase commit among those preferred sites.
//
// Paper's result: commit latency = RTT from VA to the farthest written
// object's preferred site (82 ms for size 2 -> CA, 87 ms for size 3 -> IE,
// 261 ms for size 4 -> SG); DS-durable latency adds the usual replication
// delay of U[RTTmax, 2*RTTmax] on top.
//
// Beyond the paper's figure, two opt-in sweeps (see docs/CONSISTENCY.md):
//
//   --clock-commit  Dependent-chain comparison of classic vs clock-ordered
//                   slow commit. Each chain issues back-to-back slow commits
//                   to one SG-preferred object from VA; each commit's
//                   snapshot sees the previous one, so under classic early
//                   release the participant falsely votes no on the previous
//                   commit's still-live watermark and the client pays
//                   abort/retry round trips. The clock-ordered path holds the
//                   prepare until the participant clock passes commit_ts and
//                   admits snapshot-covered watermarks, so the chain step
//                   costs one prepare round trip. Reports retry-inclusive
//                   time-to-successful-commit.
//
//   --mode psi|nmsi|ser (repeatable)  Consistency-mode tradeoff: readers at
//                   SG read a hot object that VA writers keep decided-but-
//                   unapplied (live watermark) and commit a private write.
//                   PSI parks the read until the watermark clears; NMSI
//                   serves the latest applied version instead; serializable
//                   additionally validates the read through commit, aborting
//                   when the hot object moved. Reports commit p50 + abort
//                   rate per mode.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr uint64_t kKeys = 10'000;

struct SizeResult {
  LatencyRecorder commit;
  LatencyRecorder durable;
};

SizeResult RunSize(size_t tx_size) {
  ClusterOptions options;
  options.num_sites = 4;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  Cluster cluster(options);
  for (SiteId s = 0; s < 4; ++s) {
    Populate(cluster, cluster.AddClient(s), s, kKeys, 100, 20);
  }

  auto rng = std::make_shared<Rng>(tx_size * 1000 + 5);
  auto result = std::make_shared<SizeResult>();
  WalterClient* client = cluster.AddClient(0);  // all transactions issued at VA

  auto factory = [&, client](std::function<void(bool)> done) {
    auto tx = std::make_shared<Tx>(client);
    // Object i has preferred site i (containers are laid out per site). Use
    // disjoint key ranges per client to avoid self-inflicted aborts.
    for (size_t i = 0; i < tx_size; ++i) {
      tx->Write(ObjectId{static_cast<ContainerId>(i), rng->Uniform(kKeys)},
                std::string(100, 's'));
    }
    SimTime begin = cluster.sim().Now();
    Tx::CommitOptions opts;
    opts.on_durable = [tx, begin, result, &cluster]() {
      result->durable.Add(static_cast<double>(cluster.sim().Now() - begin));
    };
    tx->Commit(
        [tx, begin, result, &cluster, done = std::move(done)](Status s) {
          if (s.ok()) {
            result->commit.Add(static_cast<double>(cluster.sim().Now() - begin));
          }
          done(s.ok());
        },
        opts);
  };

  OpenLoopLoad load(&cluster.sim(), 50, factory);
  load.Run(Seconds(1), Seconds(20));
  return std::move(*result);
}

// --- Dependent-chain sweep (--clock-commit) ----------------------------------

// A cluster whose WAN propagation is coarsely batched: the window in which a
// decided version is watermarked but not yet applied at the participant — the
// window classic early release falsely aborts dependent commits in — is the
// batch interval, not the 2ms default.
ClusterOptions ChainOptions(bool clock_commit) {
  ClusterOptions options;
  options.num_sites = 4;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  options.server.min_batch_interval = Millis(250);
  options.clock_commit = clock_commit;
  return options;
}

struct ChainResult {
  LatencyRecorder step;  // retry-inclusive time-to-successful-commit
  uint64_t steps = 0;
  uint64_t aborts = 0;
};

ChainResult RunChains(bool clock_commit, bool quick) {
  Cluster cluster(ChainOptions(clock_commit));
  Populate(cluster, cluster.AddClient(3), 3, 256, 100, 20);

  constexpr size_t kChains = 8;
  constexpr SimDuration kThink = Millis(5);
  auto result = std::make_shared<ChainResult>();
  SimTime warmup = Seconds(2);
  SimTime horizon = warmup + (quick ? Seconds(8) : Seconds(30));

  // Each chain: one VA client committing back-to-back writes to its own
  // SG-preferred object, retrying (fresh Tx, fresh snapshot) until the step
  // commits; a short think time separates steps so the next prepare trails
  // the previous decision instead of racing it.
  struct Chain {
    WalterClient* client;
    ObjectId oid;
  };
  auto chains = std::make_shared<std::vector<Chain>>();
  for (size_t c = 0; c < kChains; ++c) {
    chains->push_back({cluster.AddClient(0), ObjectId{3, 1000 + c}});
  }

  std::function<void(size_t, SimTime)> attempt = [&, result, chains](size_t c, SimTime begin) {
    auto tx = std::make_shared<Tx>((*chains)[c].client);
    tx->Write((*chains)[c].oid, std::string(100, 'c'));
    tx->Commit([&, result, chains, c, begin, tx](Status s) {
      SimTime now = cluster.sim().Now();
      if (now >= horizon) {
        return;  // measurement over; let the simulation drain
      }
      if (!s.ok()) {
        if (now >= warmup) {
          ++result->aborts;
        }
        cluster.sim().After(kThink, [&, c, begin]() { attempt(c, begin); });
        return;
      }
      if (begin >= warmup) {
        result->step.Add(static_cast<double>(now - begin));
        ++result->steps;
      }
      cluster.sim().After(kThink, [&, c]() { attempt(c, cluster.sim().Now()); });
    });
  };
  for (size_t c = 0; c < kChains; ++c) {
    cluster.sim().After(kThink * (c + 1), [&, c]() { attempt(c, cluster.sim().Now()); });
  }
  cluster.RunFor(horizon + Seconds(5));
  return std::move(*result);
}

// --- Consistency-mode sweep (--mode) -----------------------------------------

struct ModeResult {
  LatencyRecorder commit;  // reader transaction commit latency (successes)
  uint64_t committed = 0;
  uint64_t aborted = 0;

  double AbortRate() const {
    uint64_t total = committed + aborted;
    return total > 0 ? static_cast<double>(aborted) / static_cast<double>(total) : 0;
  }
};

ModeResult RunMode(ConsistencyMode mode, bool quick) {
  Cluster cluster(ChainOptions(/*clock_commit=*/false));
  // The hot container is preferred at SG and replicated ONLY there, so VA
  // readers take the remote-read path: their VA-pinned snapshot covers the
  // writers' just-decided commits, and the read lands on SG's live watermark.
  cluster.UpsertContainerEverywhere(ContainerInfo{3, 3, {3}});
  Populate(cluster, cluster.AddClient(3), 3, 256, 100, 20);

  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 8;
  constexpr SimDuration kThink = Millis(5);
  SimTime warmup = Seconds(2);
  SimTime horizon = warmup + (quick ? Seconds(8) : Seconds(30));
  auto result = std::make_shared<ModeResult>();

  // Writers at VA keep their SG-preferred objects perpetually freshly
  // decided: at SG each object cycles through live-watermark windows the
  // readers then hit.
  auto writer_clients = std::make_shared<std::vector<WalterClient*>>();
  for (size_t w = 0; w < kWriters; ++w) {
    writer_clients->push_back(cluster.AddClient(0));
  }
  std::function<void(size_t)> write_step = [&, writer_clients](size_t w) {
    auto tx = std::make_shared<Tx>((*writer_clients)[w]);
    tx->Write(ObjectId{3, 2000 + w}, std::string(100, 'w'));
    tx->Commit([&, w, tx](Status) {
      if (cluster.sim().Now() >= horizon) {
        return;
      }
      cluster.sim().After(kThink, [&, w]() { write_step(w); });
    });
  };

  // Readers at VA: pin a snapshot with a local read (it covers the writers'
  // commits the moment VA decides them), then remote-read one hot SG-only
  // object — the read reaches SG carrying a snapshot that covers the decided
  // version. That is exactly what PSI parks on (until the propagation batch
  // applies it), NMSI reads through, and serializable additionally validates
  // at commit (widening the 2PC to SG). The private write stays VA-preferred.
  auto reader_clients = std::make_shared<std::vector<WalterClient*>>();
  for (size_t r = 0; r < kReaders; ++r) {
    reader_clients->push_back(cluster.AddClient(0));
  }
  auto rng = std::make_shared<Rng>(99);
  std::function<void(size_t)> read_step = [&, reader_clients, rng, result, mode](size_t r) {
    auto tx = std::make_shared<Tx>((*reader_clients)[r]);
    tx->SetMode(mode);
    SimTime begin = cluster.sim().Now();
    ObjectId pin{0, 4000 + r};
    // Half the reads hit a writer-contended object (PSI parks, NMSI reads
    // through, serializable validation races the writers), half hit a quiet
    // one (every mode commits) — so serializable shows an abort *rate*, not
    // a wall of aborts.
    ObjectId hot{3, 2000 + rng->Uniform(2 * kWriters)};
    tx->Read(pin, [&, r, tx, hot, begin, result](Status, std::optional<std::string>) {
      tx->Read(hot, [&, r, tx, begin, result](Status, std::optional<std::string>) {
        tx->Write(ObjectId{0, 3000 + r}, std::string(100, 'r'));
        tx->Commit([&, r, tx, begin, result](Status s) {
          SimTime now = cluster.sim().Now();
          if (now >= horizon) {
            return;
          }
          if (begin >= warmup) {
            if (s.ok()) {
              result->commit.Add(static_cast<double>(now - begin));
              ++result->committed;
            } else {
              ++result->aborted;
            }
          }
          cluster.sim().After(kThink, [&, r]() { read_step(r); });
        });
      });
    });
  };

  for (size_t w = 0; w < kWriters; ++w) {
    cluster.sim().After(kThink * (w + 1), [&, w]() { write_step(w); });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    cluster.sim().After(Millis(50) + kThink * r, [&, r]() { read_step(r); });
  }
  cluster.RunFor(horizon + Seconds(5));
  return std::move(*result);
}

}  // namespace
}  // namespace walter

int main(int argc, char** argv) {
  using namespace walter;
  BenchOptions bench = ParseBenchArgs(argc, argv);
  bool clock_sweep = false;
  std::vector<ConsistencyMode> modes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clock-commit") == 0) {
      clock_sweep = true;
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      const char* m = argv[++i];
      if (std::strcmp(m, "psi") == 0) {
        modes.push_back(ConsistencyMode::kPsi);
      } else if (std::strcmp(m, "nmsi") == 0) {
        modes.push_back(ConsistencyMode::kNmsi);
      } else if (std::strcmp(m, "ser") == 0) {
        modes.push_back(ConsistencyMode::kSerializable);
      } else {
        std::fprintf(stderr, "unknown --mode %s (psi|nmsi|ser)\n", m);
        return 2;
      }
    }
  }
  BenchJson json;

  std::printf("=== Figure 20: slow commit and disaster-safe durability latency ===\n");
  std::printf("(write-only txns at VA; objects preferred at VA, CA, IE, SG in order)\n\n");

  const char* expected_commit[] = {"~82 (VA-CA RTT)", "~87 (VA-IE RTT)", "~261 (VA-SG RTT)"};
  std::vector<SizeResult> results;
  for (size_t size = 2; size <= 4; ++size) {
    results.push_back(RunSize(size));
    SizeResult& r = results.back();
    std::printf("tx size=%zu: commit p50=%.0fms (paper %s)   ds-durable p50=%.0fms\n", size,
                r.commit.Percentile(50) / 1000.0, expected_commit[size - 2],
                r.durable.Percentile(50) / 1000.0);
    json.Set("size" + std::to_string(size) + ".commit_p50_ms", r.commit.Percentile(50) / 1000.0);
    json.Set("size" + std::to_string(size) + ".durable_p50_ms",
             r.durable.Percentile(50) / 1000.0);
  }
  std::printf("\n");
  for (size_t size = 2; size <= 4; ++size) {
    PrintCdf("commit(size=" + std::to_string(size) + ")", results[size - 2].commit, 10);
  }
  for (size_t size = 2; size <= 4; ++size) {
    PrintCdf("ds-durable(size=" + std::to_string(size) + ")", results[size - 2].durable, 10);
  }
  std::printf("Expected shape: commit latency tracks the farthest preferred site's RTT;\n"
              "durability adds U[RTTmax, 2*RTTmax] replication delay on top.\n");

  if (clock_sweep) {
    std::printf("\n=== Clock-ordered slow commit: dependent chains VA -> SG ===\n");
    std::printf("(time-to-successful-commit per chain step, retries included)\n\n");
    ChainResult classic = RunChains(/*clock_commit=*/false, bench.quick);
    ChainResult clocked = RunChains(/*clock_commit=*/true, bench.quick);
    double classic_p50 = classic.step.Percentile(50) / 1000.0;
    double clocked_p50 = clocked.step.Percentile(50) / 1000.0;
    double ratio = clocked_p50 > 0 ? classic_p50 / clocked_p50 : 0;
    std::printf("classic:       p50=%.0fms  steps=%llu  aborts=%llu\n", classic_p50,
                static_cast<unsigned long long>(classic.steps),
                static_cast<unsigned long long>(classic.aborts));
    std::printf("clock-ordered: p50=%.0fms  steps=%llu  aborts=%llu\n", clocked_p50,
                static_cast<unsigned long long>(clocked.steps),
                static_cast<unsigned long long>(clocked.aborts));
    std::printf("speedup (classic/clock p50): %.2fx\n", ratio);
    json.Set("chain.classic_p50_ms", classic_p50);
    json.Set("chain.classic_aborts", static_cast<double>(classic.aborts));
    json.Set("chain.clock_p50_ms", clocked_p50);
    json.Set("chain.clock_aborts", static_cast<double>(clocked.aborts));
    json.Set("chain.speedup", ratio);
  }

  for (ConsistencyMode mode : modes) {
    ModeResult r = RunMode(mode, bench.quick);
    double p50 = r.commit.Percentile(50) / 1000.0;
    std::printf("\nmode=%s: reader commit p50=%.1fms  committed=%llu  abort-rate=%.3f\n",
                ConsistencyModeName(mode), p50,
                static_cast<unsigned long long>(r.committed), r.AbortRate());
    std::string prefix = std::string("mode.") + ConsistencyModeName(mode);
    json.Set(prefix + ".commit_p50_ms", p50);
    json.Set(prefix + ".abort_rate", r.AbortRate());
    json.Set(prefix + ".committed", static_cast<double>(r.committed));
  }

  json.WriteIfRequested(bench.json_path);
  return 0;
}
