// Figure 20 — Latency of slow commit and of reaching disaster-safe durability.
//
// Setup per Section 8.5: 4 sites; write-only transactions issued at VA with 2,
// 3 or 4 objects, each object preferred at a different site (VA, CA, IE, SG in
// that order), so commit runs two-phase commit among those preferred sites.
//
// Paper's result: commit latency = RTT from VA to the farthest written
// object's preferred site (82 ms for size 2 -> CA, 87 ms for size 3 -> IE,
// 261 ms for size 4 -> SG); DS-durable latency adds the usual replication
// delay of U[RTTmax, 2*RTTmax] on top.
#include <cstdio>
#include <memory>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr uint64_t kKeys = 10'000;

struct SizeResult {
  LatencyRecorder commit;
  LatencyRecorder durable;
};

SizeResult RunSize(size_t tx_size) {
  ClusterOptions options;
  options.num_sites = 4;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  Cluster cluster(options);
  for (SiteId s = 0; s < 4; ++s) {
    Populate(cluster, cluster.AddClient(s), s, kKeys, 100, 20);
  }

  auto rng = std::make_shared<Rng>(tx_size * 1000 + 5);
  auto result = std::make_shared<SizeResult>();
  WalterClient* client = cluster.AddClient(0);  // all transactions issued at VA

  auto factory = [&, client](std::function<void(bool)> done) {
    auto tx = std::make_shared<Tx>(client);
    // Object i has preferred site i (containers are laid out per site). Use
    // disjoint key ranges per client to avoid self-inflicted aborts.
    for (size_t i = 0; i < tx_size; ++i) {
      tx->Write(ObjectId{static_cast<ContainerId>(i), rng->Uniform(kKeys)},
                std::string(100, 's'));
    }
    SimTime begin = cluster.sim().Now();
    Tx::CommitOptions opts;
    opts.on_durable = [tx, begin, result, &cluster]() {
      result->durable.Add(static_cast<double>(cluster.sim().Now() - begin));
    };
    tx->Commit(
        [tx, begin, result, &cluster, done = std::move(done)](Status s) {
          if (s.ok()) {
            result->commit.Add(static_cast<double>(cluster.sim().Now() - begin));
          }
          done(s.ok());
        },
        opts);
  };

  OpenLoopLoad load(&cluster.sim(), 50, factory);
  load.Run(Seconds(1), Seconds(20));
  return std::move(*result);
}

}  // namespace
}  // namespace walter

int main() {
  using namespace walter;
  std::printf("=== Figure 20: slow commit and disaster-safe durability latency ===\n");
  std::printf("(write-only txns at VA; objects preferred at VA, CA, IE, SG in order)\n\n");

  const char* expected_commit[] = {"~82 (VA-CA RTT)", "~87 (VA-IE RTT)", "~261 (VA-SG RTT)"};
  std::vector<SizeResult> results;
  for (size_t size = 2; size <= 4; ++size) {
    results.push_back(RunSize(size));
    SizeResult& r = results.back();
    std::printf("tx size=%zu: commit p50=%.0fms (paper %s)   ds-durable p50=%.0fms\n", size,
                r.commit.Percentile(50) / 1000.0, expected_commit[size - 2],
                r.durable.Percentile(50) / 1000.0);
  }
  std::printf("\n");
  for (size_t size = 2; size <= 4; ++size) {
    PrintCdf("commit(size=" + std::to_string(size) + ")", results[size - 2].commit, 10);
  }
  for (size_t size = 2; size <= 4; ++size) {
    PrintCdf("ds-durable(size=" + std::to_string(size) + ")", results[size - 2].durable, 10);
  }
  std::printf("Expected shape: commit latency tracks the farthest preferred site's RTT;\n"
              "durability adds U[RTTmax, 2*RTTmax] replication delay on top.\n");
  return 0;
}
