// Simulation-core hot-path microbenchmark: event loop, timer cancellation,
// RPC echo, and propagation-style fanout. Wall-clock rates over the same four
// workloads as the pre-overhaul baseline recorded in BENCH_core.json, so the
// numbers are directly comparable across commits.
//
// Scenarios:
//   A event-loop:   256 self-rescheduling chains, 2M events total.
//   B timer-cancel: 1M schedule(10s timeout) + cancel pairs (the RPC-timeout
//                   pattern: the response almost always arrives first).
//   C rpc-echo:     1M 128-byte echo round-trips across a 4-site uniform
//                   topology (1 ms RTT, 10 us intra-site), 16 client loops.
//   D fanout:       20k rounds of one 32 KB batch payload sent to 3 remote
//                   destinations; reports payload bytes materialized per
//                   message (buffer sharing makes this size/3 instead of size).
//
// --quick divides the workload sizes by 10 (CI smoke); --json PATH emits the
// rates machine-readably.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace walter {
namespace {

double WallSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Scenario A: self-rescheduling timer wheel; the capture exceeds 16 bytes so
// the closure is representative of this codebase's callbacks.
double BenchEventLoop(uint64_t target_events) {
  Simulator sim(1);
  struct Chain {
    Simulator* sim;
    uint64_t remaining;
    uint64_t pad;  // keep the capture larger than a bare pointer
  };
  std::vector<Chain> chains(256);
  auto t0 = std::chrono::steady_clock::now();
  std::function<void(Chain*)> tick = [&tick](Chain* c) {
    if (c->remaining == 0) {
      return;
    }
    --c->remaining;
    Chain* cp = c;
    auto* tp = &tick;
    c->sim->After(1, [cp, tp, pad = c->pad]() {
      (void)pad;
      (*tp)(cp);
    });
  };
  for (auto& c : chains) {
    c = Chain{&sim, target_events / chains.size(), 0x5a5a5a5a};
    tick(&c);
  }
  sim.Run();
  double secs = WallSeconds(t0);
  std::printf("  event-loop: %llu events in %.3fs = %.0f events/s\n",
              (unsigned long long)sim.events_processed(), secs,
              sim.events_processed() / secs);
  return sim.events_processed() / secs;
}

// Scenario B: schedule a far-future timeout, cancel it almost immediately.
double BenchTimerCancel(uint64_t target_ops) {
  Simulator sim(2);
  uint64_t done = 0;
  EventId pending = 0;
  std::function<void()> step = [&]() {
    if (pending != 0) {
      sim.Cancel(pending);
      pending = 0;
    }
    if (done++ >= target_ops) {
      return;
    }
    uint64_t pad = done;
    pending = sim.After(Seconds(10), [pad]() { (void)pad; });
    sim.After(1, step);
  };
  auto t0 = std::chrono::steady_clock::now();
  step();
  sim.Run();
  double secs = WallSeconds(t0);
  std::printf("  timer-cancel: %llu schedule+cancel pairs in %.3fs = %.0f ops/s\n",
              (unsigned long long)target_ops, secs, target_ops / secs);
  return target_ops / secs;
}

// Scenario C: RPC echo round-trips across sites. The network layer is the
// most trace-instrumented code this benchmark exercises (one kNetEnqueue per
// message), so running it with the ring tracer on vs off measures the tracing
// overhead on a real hot path.
double BenchRpcEcho(uint64_t target_msgs, bool trace_enabled, const char* label) {
  Tracer::Get().SetEnabled(trace_enabled);
  Simulator sim(3);
  Network net(&sim, Topology::Uniform(4, Millis(1), Micros(10)));
  net.SetJitter(0);
  std::vector<std::unique_ptr<RpcEndpoint>> servers;
  std::vector<std::unique_ptr<RpcEndpoint>> clients;
  constexpr uint32_t kEcho = 7;
  for (SiteId s = 0; s < 4; ++s) {
    servers.push_back(std::make_unique<RpcEndpoint>(&net, Address{s, 1}));
    servers.back()->Handle(kEcho, [](const Message& m, RpcEndpoint::ReplyFn reply) {
      Message resp;
      resp.payload = m.payload;  // refcount bump: echoing shares the buffer
      reply(std::move(resp));
    });
  }
  Payload body(std::string(128, 'x'));
  auto t0 = std::chrono::steady_clock::now();
  std::function<void(RpcEndpoint*, SiteId)> fire = [&](RpcEndpoint* ep, SiteId dest) {
    if (net.messages_sent() >= target_msgs) {
      return;
    }
    ep->Call(Address{dest, 1}, kEcho, body,
             [&fire, ep, dest](Status, const Message&) { fire(ep, dest); });
  };
  for (SiteId s = 0; s < 4; ++s) {
    for (int c = 0; c < 4; ++c) {
      clients.push_back(std::make_unique<RpcEndpoint>(&net, Address{s, 100 + (uint32_t)c}));
      fire(clients.back().get(), (s + 1 + c) % 4);
    }
  }
  sim.Run();
  double secs = WallSeconds(t0);
  Tracer::Get().SetEnabled(true);
  std::printf("  rpc-echo%s: %llu messages in %.3fs = %.0f msgs/s\n", label,
              (unsigned long long)net.messages_sent(), secs, net.messages_sent() / secs);
  return net.messages_sent() / secs;
}

// Scenario D: propagation-style fanout — one 32 KB batch payload per round,
// shared by reference across 3 destinations.
struct FanoutResult {
  double msgs_per_sec = 0;
  double bytes_per_msg = 0;
};

FanoutResult BenchFanout(uint64_t rounds) {
  Simulator sim(4);
  Topology topo = Topology::Uniform(4, Millis(1), Micros(10));
  topo.SetCrossSiteBandwidthBps(1e12);  // do not let virtual bw throttle wall time
  Network net(&sim, topo);
  net.SetJitter(0);
  constexpr uint32_t kBatch = 12;
  std::vector<std::unique_ptr<RpcEndpoint>> eps;
  uint64_t delivered = 0;
  for (SiteId s = 0; s < 4; ++s) {
    eps.push_back(std::make_unique<RpcEndpoint>(&net, Address{s, 1}));
    eps.back()->Handle(kBatch, [&delivered](const Message&, RpcEndpoint::ReplyFn) {
      ++delivered;
    });
  }
  uint64_t wrapped_before = Payload::bytes_wrapped();
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t r = 0; r < rounds; ++r) {
    // Serialize once per round; all three sends alias the same buffer.
    Payload batch(std::string(32 * 1024, 'b'));
    for (SiteId d = 1; d < 4; ++d) {
      eps[0]->Send(Address{d, 1}, kBatch, batch);
    }
    if (r % 64 == 0) {
      sim.Run();  // drain so the queue does not balloon
    }
  }
  sim.Run();
  double secs = WallSeconds(t0);
  uint64_t wrapped = Payload::bytes_wrapped() - wrapped_before;
  FanoutResult out;
  out.msgs_per_sec = delivered / secs;
  out.bytes_per_msg = static_cast<double>(wrapped) / delivered;
  std::printf("  fanout: %llu msgs in %.3fs = %.0f msgs/s, %.0f bytes wrapped/msg\n",
              (unsigned long long)delivered, secs, out.msgs_per_sec, out.bytes_per_msg);
  return out;
}

}  // namespace
}  // namespace walter

int main(int argc, char** argv) {
  walter::BenchOptions opt = walter::ParseBenchArgs(argc, argv);
  uint64_t scale = opt.quick ? 10 : 1;
  std::printf("=== sim hot-path ===\n");
  double a = walter::BenchEventLoop(2'000'000 / scale);
  double b = walter::BenchTimerCancel(1'000'000 / scale);
  // Interleaved best-of-3 per mode: wall-clock noise on a shared machine is
  // several percent per run, so compare each mode's best pass rather than two
  // single runs back to back.
  double c = 0;
  double c_traced = 0;
  for (int round = 0; round < 3; ++round) {
    c = std::max(c, walter::BenchRpcEcho(1'000'000 / scale, /*trace_enabled=*/false, ""));
    c_traced = std::max(c_traced, walter::BenchRpcEcho(1'000'000 / scale,
                                                       /*trace_enabled=*/true,
                                                       " (ring trace)"));
  }
  // Percentage slowdown of the traced best over the untraced best; negative
  // values mean the difference is inside run-to-run noise.
  double trace_overhead_pct = (c / c_traced - 1.0) * 100.0;
  std::printf("  ring-tracer overhead on rpc-echo: %.2f%%\n", trace_overhead_pct);
  walter::FanoutResult d = walter::BenchFanout(20'000 / scale);
  // Headline events/sec: total scheduled+fired events over both event-loop
  // scenarios (aggregate by total work / total time).
  double ev_a = 2'000'000.0 / scale;
  double ev_b = 1'000'000.0 / scale;
  double headline = (ev_a + 2 * ev_b) / (ev_a / a + ev_b / b);
  std::printf("headline events/s (A+B aggregate): %.0f\n", headline);

  walter::BenchJson json;
  json.Set("bench", std::string("sim_hotpath"));
  json.Set("quick", opt.quick ? 1.0 : 0.0);
  json.Set("event_loop_events_per_sec", a);
  json.Set("timer_cancel_ops_per_sec", b);
  json.Set("rpc_echo_msgs_per_sec", c);
  json.Set("rpc_echo_traced_msgs_per_sec", c_traced);
  json.Set("trace_overhead_pct", trace_overhead_pct);
  json.Set("fanout_msgs_per_sec", d.msgs_per_sec);
  json.Set("fanout_bytes_wrapped_per_msg", d.bytes_per_msg);
  json.Set("headline_events_per_sec", headline);
  return json.WriteIfRequested(opt.json_path) ? 0 : 1;
}
