// Microbenchmarks (google-benchmark) for the core data structures on the hot
// paths: cset operations, vector-timestamp visibility checks, record
// serialization, WAL append/replay, and multi-version history reads. These are
// real-time (not simulated-time) measurements of the library code itself.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/common/update.h"
#include "src/crdt/cset.h"
#include "src/storage/object_history.h"
#include "src/storage/store.h"
#include "src/storage/wal.h"

namespace walter {
namespace {

void BM_CsetAdd(benchmark::State& state) {
  Rng rng(1);
  CountingSet set;
  uint64_t universe = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    set.Add(ObjectId{1, rng.Uniform(universe)});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsetAdd)->Arg(64)->Arg(4096)->Arg(262144);

void BM_CsetApplyOpMixed(benchmark::State& state) {
  Rng rng(2);
  CountingSet set;
  for (auto _ : state) {
    ObjectUpdate op = rng.Bernoulli(0.5)
                          ? ObjectUpdate::Add(ObjectId{1, 1}, ObjectId{2, rng.Uniform(1024)})
                          : ObjectUpdate::Del(ObjectId{1, 1}, ObjectId{2, rng.Uniform(1024)});
    set.ApplyOp(op);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsetApplyOpMixed);

void BM_CsetSerialize(benchmark::State& state) {
  CountingSet set;
  Rng rng(3);
  for (int64_t i = 0; i < state.range(0); ++i) {
    set.Add(ObjectId{1, rng.Uniform(1u << 20)});
  }
  for (auto _ : state) {
    ByteWriter w;
    set.Serialize(&w);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CsetSerialize)->Arg(16)->Arg(256)->Arg(4096);

void BM_VtsSees(benchmark::State& state) {
  VectorTimestamp vts(std::vector<uint64_t>{100, 200, 300, 400});
  Rng rng(4);
  for (auto _ : state) {
    Version v{static_cast<SiteId>(rng.Uniform(4)), rng.Uniform(500)};
    benchmark::DoNotOptimize(vts.Sees(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VtsSees);

void BM_VtsCovers(benchmark::State& state) {
  size_t sites = static_cast<size_t>(state.range(0));
  VectorTimestamp a(sites);
  VectorTimestamp b(sites);
  for (SiteId s = 0; s < sites; ++s) {
    a.set(s, 1000 + s);
    b.set(s, 900 + s);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Covers(b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VtsCovers)->Arg(4)->Arg(16)->Arg(64);

TxRecord MakeRecord(uint64_t seqno, size_t updates, size_t value_size) {
  TxRecord rec;
  rec.tid = seqno;
  rec.origin = 0;
  rec.version = Version{0, seqno};
  rec.start_vts = VectorTimestamp(std::vector<uint64_t>{seqno - 1, 0, 0, 0});
  for (size_t i = 0; i < updates; ++i) {
    rec.updates.push_back(ObjectUpdate::Data(ObjectId{1, i}, std::string(value_size, 'x')));
  }
  return rec;
}

void BM_TxRecordSerialize(benchmark::State& state) {
  TxRecord rec = MakeRecord(1, static_cast<size_t>(state.range(0)), 100);
  for (auto _ : state) {
    ByteWriter w;
    rec.Serialize(&w);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxRecordSerialize)->Arg(1)->Arg(5)->Arg(50);

void BM_WalAppend(benchmark::State& state) {
  TxRecord rec = MakeRecord(1, 5, 100);
  Wal wal;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.Append(rec));
    if (wal.size() > (64u << 20)) {
      state.PauseTiming();
      wal.TruncatePrefix(wal.base() + wal.size());
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rec.ByteSize()));
}
BENCHMARK(BM_WalAppend);

void BM_WalReplay(benchmark::State& state) {
  Wal wal;
  for (int64_t i = 1; i <= state.range(0); ++i) {
    wal.Append(MakeRecord(static_cast<uint64_t>(i), 5, 100));
  }
  for (auto _ : state) {
    auto result = wal.ReplaySelf();
    benchmark::DoNotOptimize(result.records.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WalReplay)->Arg(100)->Arg(10000);

void BM_HistoryReadRegular(benchmark::State& state) {
  ObjectHistory history;
  for (uint64_t i = 1; i <= static_cast<uint64_t>(state.range(0)); ++i) {
    history.Append(Version{0, i}, ObjectUpdate::Data(ObjectId{1, 1}, "v"));
  }
  VectorTimestamp vts(std::vector<uint64_t>{static_cast<uint64_t>(state.range(0)) / 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.ReadRegular(vts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryReadRegular)->Arg(4)->Arg(64)->Arg(1024);

void BM_HistoryReadCset(benchmark::State& state) {
  ObjectHistory history;
  Rng rng(7);
  for (uint64_t i = 1; i <= static_cast<uint64_t>(state.range(0)); ++i) {
    history.Append(Version{0, i},
                   ObjectUpdate::Add(ObjectId{1, 1}, ObjectId{2, rng.Uniform(64)}));
  }
  VectorTimestamp vts(std::vector<uint64_t>{static_cast<uint64_t>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.ReadCset(vts).entry_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryReadCset)->Arg(16)->Arg(256)->Arg(4096);

void BM_HistoryGcThenRead(benchmark::State& state) {
  // Cset read cost after GC folding: the Section 6 rationale for preferring to
  // keep csets cached (reconstructing them from the log is expensive).
  ObjectHistory history;
  Rng rng(8);
  for (uint64_t i = 1; i <= 4096; ++i) {
    history.Append(Version{0, i},
                   ObjectUpdate::Add(ObjectId{1, 1}, ObjectId{2, rng.Uniform(64)}));
  }
  history.GarbageCollect(VectorTimestamp(std::vector<uint64_t>{4000}));
  VectorTimestamp vts(std::vector<uint64_t>{4096});
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.ReadCset(vts).entry_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryGcThenRead);

void BM_StoreApply(benchmark::State& state) {
  Store store;
  uint64_t seqno = 0;
  for (auto _ : state) {
    store.Apply(MakeRecord(++seqno, 5, 100));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreApply);

void BM_Crc32(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(128)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace walter

BENCHMARK_MAIN();
