// Figure 23 — ReTwis throughput on Redis vs Walter, 1 and 2 sites.
//
// Setup per Section 8.7: both stores commit writes to memory; front-end web
// servers (a fixed pool of workers per site) run the application logic and
// issue storage operations in series — that worker pool is the PHP/Apache
// stand-in. Workloads: status (read timeline), post, follow, and the mixed
// workload (85% status, 7.5% post, 7.5% follow).
//
// Paper's result: with one site ReTwis-on-Walter is within 25% of
// ReTwis-on-Redis (post: 4713 vs 5740 ops/s); with two sites Walter doubles
// its one-site throughput (post: 9527 ops/s) — Redis cannot use a second
// write site at all.
// Substitution: 20,000 users instead of 500,000 (user count scales data
// volume, not per-op cost); each user has ~4 followers.
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "src/apps/retwis/retwis.h"

namespace walter {
namespace {

constexpr uint64_t kUsers = 20'000;
constexpr int kWorkersPerSite = 40;  // front-end worker pool ("PHP processes")
constexpr SimDuration kWarmup = Millis(300);
constexpr SimDuration kMeasure = Seconds(1.5);

enum class Op { kStatus, kPost, kFollow, kMixed };

const char* OpName(Op op) {
  switch (op) {
    case Op::kStatus:
      return "status";
    case Op::kPost:
      return "post";
    case Op::kFollow:
      return "follow";
    case Op::kMixed:
      return "mixed";
  }
  return "?";
}

// Seeds follow edges so posts fan out (~4 followers per posting user), plus
// some posts so status reads fetch real timelines.
void SeedFollows(Simulator& sim, RetwisBackend& app, Rng& rng, uint64_t edges,
                 uint64_t posts, size_t num_sites) {
  for (uint64_t i = 0; i < edges; ++i) {
    bool done = false;
    app.Follow(rng.Uniform(kUsers), rng.Uniform(kUsers), [&](Status) { done = true; });
    while (!done && sim.Step()) {
    }
  }
  for (uint64_t i = 0; i < posts; ++i) {
    bool done = false;
    // Post for users homed at the seeding app's site (site 0) only.
    uint64_t user = rng.Uniform(kUsers / num_sites) * num_sites;
    app.Post(user, "seed post", [&](Status) { done = true; });
    while (!done && sim.Step()) {
    }
  }
}

// Workers at `site` act for users homed there (user % num_sites == site), as
// in the paper's deployment where a user always logs into her home site.
OpFactory MakeOp(RetwisBackend* app, Op op, std::shared_ptr<Rng> rng, SiteId site,
                 size_t num_sites) {
  auto pick_user = [rng, site, num_sites]() {
    return rng->Uniform(kUsers / num_sites) * num_sites + site;
  };
  auto status = [app, pick_user](std::function<void(bool)> done) {
    app->Status(pick_user(), [done = std::move(done)](Status s, std::vector<std::string>) {
      done(s.ok());
    });
  };
  auto post = [app, pick_user](std::function<void(bool)> done) {
    app->Post(pick_user(), "tweet!", [done = std::move(done)](Status s) { done(s.ok()); });
  };
  auto follow = [app, pick_user](std::function<void(bool)> done) {
    app->Follow(pick_user(), pick_user(), [done = std::move(done)](Status s) { done(s.ok()); });
  };
  switch (op) {
    case Op::kStatus:
      return status;
    case Op::kPost:
      return post;
    case Op::kFollow:
      return follow;
    case Op::kMixed:
      return [rng, status, post, follow](std::function<void(bool)> done) {
        double dice = rng->NextDouble();
        if (dice < 0.85) {
          status(std::move(done));
        } else if (dice < 0.925) {
          post(std::move(done));
        } else {
          follow(std::move(done));
        }
      };
  }
  return {};
}

double RunRedis(Op op, uint64_t seed) {
  Simulator sim(seed);
  Network net(&sim, Topology::Ec2Subset(1));
  RedisServer::Options options;
  options.site = 0;
  RedisServer server(&sim, &net, options);
  std::vector<std::unique_ptr<RedisClient>> clients;
  std::vector<std::unique_ptr<RetwisOnRedis>> apps;
  auto add_app = [&]() {
    clients.push_back(std::make_unique<RedisClient>(
        &net, 0, kClientPortBase + static_cast<uint32_t>(clients.size()), 0));
    apps.push_back(std::make_unique<RetwisOnRedis>(clients.back().get()));
    return apps.back().get();
  };

  Rng seed_rng(seed);
  SeedFollows(sim, *add_app(), seed_rng, kUsers / 5, 2000, 1);

  auto rng = std::make_shared<Rng>(seed + 1);
  ClosedLoopLoad load(&sim);
  for (int w = 0; w < kWorkersPerSite; ++w) {
    load.AddClient(MakeOp(add_app(), op, rng, 0, 1));
  }
  return load.Run(kWarmup, kMeasure).Throughput();
}

double RunWalter(Op op, size_t num_sites, uint64_t seed) {
  ClusterOptions options;
  options.num_sites = num_sites;
  options.seed = seed;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Memory();  // §8.7: commit writes to memory
  Cluster cluster(options);

  std::vector<std::unique_ptr<RetwisOnWalter>> apps;
  auto add_app = [&](SiteId s) {
    apps.push_back(std::make_unique<RetwisOnWalter>(cluster.AddClient(s)));
    return apps.back().get();
  };

  Rng seed_rng(seed);
  SeedFollows(cluster.sim(), *add_app(0), seed_rng, kUsers / 5, 2000, num_sites);
  cluster.RunFor(Seconds(2));  // seeding propagates

  auto rng = std::make_shared<Rng>(seed + 1);
  ClosedLoopLoad load(&cluster.sim());
  for (SiteId s = 0; s < num_sites; ++s) {
    for (int w = 0; w < kWorkersPerSite; ++w) {
      load.AddClient(MakeOp(add_app(s), op, rng, s, num_sites));
    }
  }
  return load.Run(kWarmup, kMeasure).Throughput();
}

}  // namespace
}  // namespace walter

int main() {
  using walter::Op;
  using walter::TablePrinter;
  std::printf("=== Figure 23: ReTwis throughput, Redis vs Walter (ops/s) ===\n");
  std::printf("(memory commit; mixed = 85%% status / 7.5%% post / 7.5%% follow)\n\n");

  TablePrinter table({"workload", "Redis 1-site", "Walter 1-site", "Walter 2-sites",
                      "paper (post row)"});
  uint64_t seed = 2300;
  for (Op op : {Op::kStatus, Op::kPost, Op::kFollow, Op::kMixed}) {
    double redis = walter::RunRedis(op, seed++);
    double w1 = walter::RunWalter(op, 1, seed++);
    double w2 = walter::RunWalter(op, 2, seed++);
    table.AddRow({walter::OpName(op), TablePrinter::Fmt(redis, 0), TablePrinter::Fmt(w1, 0),
                  TablePrinter::Fmt(w2, 0),
                  op == Op::kPost ? "5740 / 4713 / 9527" : ""});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Expected shape: Walter 1-site within ~25%% of Redis; Walter 2-sites about\n"
              "twice Walter 1-site (Redis cannot write at a second site).\n");
  return 0;
}
