// Ablation — How much do preferred sites buy?
//
// Sweeps the fraction of write transactions that target a remote-preferred
// container (and therefore slow-commit with cross-site 2PC) from 0% to 100%,
// measuring aggregate throughput and commit latency on the 4-site EC2
// topology. At 0% every commit is fast (the design point the paper's
// applications engineer for); at 100% Walter degrades to an eager
// geo-distributed commit.
#include <cstdio>
#include <memory>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr uint64_t kKeys = 20'000;
constexpr int kClientsPerSite = 32;

struct Point {
  double ktps;
  double p50_ms;
  double p99_ms;
  uint64_t slow;
  uint64_t aborts;
};

Point RunFraction(double remote_fraction, uint64_t seed) {
  ClusterOptions options;
  options.num_sites = 4;
  options.seed = seed;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  Cluster cluster(options);
  for (SiteId s = 0; s < 4; ++s) {
    Populate(cluster, cluster.AddClient(s), s, kKeys, 100, 20);
  }

  auto rng = std::make_shared<Rng>(seed * 13 + 1);
  ClosedLoopLoad load(&cluster.sim());
  for (SiteId s = 0; s < 4; ++s) {
    for (int c = 0; c < kClientsPerSite; ++c) {
      WalterClient* client = cluster.AddClient(s);
      load.AddClient([client, s, remote_fraction, rng](std::function<void(bool)> done) {
        auto tx = std::make_shared<Tx>(client);
        ContainerId target = s;
        if (rng->NextDouble() < remote_fraction) {
          target = (s + 1 + rng->Uniform(3)) % 4;  // remote-preferred container
        }
        tx->Write(ObjectId{target, rng->Uniform(kKeys)}, std::string(100, 'p'));
        tx->Commit([tx, done = std::move(done)](Status st) { done(st.ok()); });
      });
    }
  }
  LoadResult result = load.Run(Millis(300), Seconds(1.5));

  Point p;
  p.ktps = result.ThroughputKops();
  p.p50_ms = result.latency.Percentile(50) / 1000.0;
  p.p99_ms = result.latency.Percentile(99) / 1000.0;
  p.slow = 0;
  p.aborts = 0;
  for (SiteId s = 0; s < 4; ++s) {
    p.slow += cluster.server(s).stats().slow_commits;
    p.aborts += cluster.server(s).stats().aborts;
  }
  return p;
}

}  // namespace
}  // namespace walter

int main() {
  using walter::TablePrinter;
  std::printf("=== Ablation: preferred-site hit ratio (4 sites, single-write txns) ===\n\n");
  TablePrinter table({"remote-write %", "Ktps", "commit p50 (ms)", "commit p99 (ms)",
                      "slow commits", "aborts"});
  uint64_t seed = 9000;
  for (double f : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    walter::Point p = walter::RunFraction(f, seed++);
    table.AddRow({TablePrinter::Fmt(f * 100, 0), TablePrinter::Fmt(p.ktps),
                  TablePrinter::Fmt(p.p50_ms), TablePrinter::Fmt(p.p99_ms),
                  std::to_string(p.slow), std::to_string(p.aborts)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Expected shape: throughput falls and median latency jumps from sub-10ms to\n"
              "WAN RTTs as the slow-commit fraction grows — preferred-site placement is\n"
              "what keeps Walter's commits local.\n");
  return 0;
}
