// Ablation — csets vs slow commit for multi-site counters.
//
// The workload every site wants to update: a shared set/counter (think "likes"
// or a friends list). Two implementations:
//  (a) cset: each site fast-commits add() operations — never conflicts;
//  (b) regular object with read-modify-write: remote sites must slow-commit
//      through the preferred site, and concurrent updates abort and retry.
// This quantifies why the paper introduces csets (Section 2).
#include <cstdio>
#include <memory>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr int kClientsPerSite = 8;
constexpr int kCounters = 16;  // shared csets/objects, preferred at site 0

struct Point {
  double kops;
  double p50_ms;
  uint64_t aborts;
  uint64_t slow;
};

Point RunVariant(bool use_cset, uint64_t seed) {
  ClusterOptions options;
  options.num_sites = 4;
  options.seed = seed;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  Cluster cluster(options);

  auto rng = std::make_shared<Rng>(seed);
  ClosedLoopLoad load(&cluster.sim());
  for (SiteId s = 0; s < 4; ++s) {
    for (int c = 0; c < kClientsPerSite; ++c) {
      WalterClient* client = cluster.AddClient(s);
      if (use_cset) {
        load.AddClient([client, rng](std::function<void(bool)> done) {
          auto tx = std::make_shared<Tx>(client);
          ObjectId counter{0, 500'000 + rng->Uniform(kCounters)};
          tx->SetAdd(counter, ObjectId{77, rng->Next() % 1'000'000});
          tx->Commit([tx, done = std::move(done)](Status st) { done(st.ok()); });
        });
      } else {
        // Read-modify-write on a regular object (preferred at site 0).
        load.AddClient([client, rng](std::function<void(bool)> done) {
          auto tx = std::make_shared<Tx>(client);
          ObjectId counter{0, 600'000 + rng->Uniform(kCounters)};
          tx->Read(counter, [tx, counter, done = std::move(done)](
                                Status st, std::optional<std::string> v) mutable {
            if (!st.ok()) {
              done(false);
              return;
            }
            int64_t value = v ? std::strtoll(v->c_str(), nullptr, 10) : 0;
            tx->Write(counter, std::to_string(value + 1));
            tx->Commit([tx, done = std::move(done)](Status st) { done(st.ok()); });
          });
        });
      }
    }
  }
  LoadResult result = load.Run(Millis(500), Seconds(3));

  Point p;
  p.kops = result.ThroughputKops();
  p.p50_ms = result.latency.Percentile(50) / 1000.0;
  p.aborts = 0;
  p.slow = 0;
  for (SiteId s = 0; s < 4; ++s) {
    p.aborts += cluster.server(s).stats().aborts;
    p.slow += cluster.server(s).stats().slow_commits;
  }
  return p;
}

}  // namespace
}  // namespace walter

int main() {
  using walter::TablePrinter;
  std::printf("=== Ablation: cset vs read-modify-write for multi-site counters ===\n");
  std::printf("(4 sites, %d shared counters preferred at VA, %d clients/site)\n\n",
              walter::kCounters, walter::kClientsPerSite);
  walter::Point cset = walter::RunVariant(true, 9200);
  walter::Point rmw = walter::RunVariant(false, 9201);

  TablePrinter table({"variant", "Kops/s", "p50 latency (ms)", "aborts", "slow commits"});
  table.AddRow({"cset add", TablePrinter::Fmt(cset.kops), TablePrinter::Fmt(cset.p50_ms),
                std::to_string(cset.aborts), std::to_string(cset.slow)});
  table.AddRow({"regular RMW", TablePrinter::Fmt(rmw.kops), TablePrinter::Fmt(rmw.p50_ms),
                std::to_string(rmw.aborts), std::to_string(rmw.slow)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("Expected shape: csets commit locally (ms latency, zero aborts) at every\n"
              "site; the regular-object variant pays WAN 2PC from 3 of 4 sites and aborts\n"
              "under contention — the gap is the case for csets.\n");
  return 0;
}
