// Figure 19 — Replication latency for disaster-safe durability, 2/3/4 sites.
//
// Setup per Section 8.3: committed write transactions propagate in batches; a
// transaction is measured from local commit acknowledgment until it is
// disaster-safe durable (committed at all sites in the experiment, §8.1).
//
// Paper's result: the latency is distributed approximately uniformly in
// [RTTmax, 2*RTTmax], where RTTmax is the largest round-trip from VA: 82 ms
// for 2 sites (VA-CA), 87 ms (VA-IE) for 3, 261 ms (VA-SG) for 4 — because a
// transaction waits for the previous propagation batch to finish.
#include <cstdio>
#include <memory>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr uint64_t kKeys = 10'000;

LatencyRecorder RunSites(size_t num_sites) {
  ClusterOptions options;
  options.num_sites = num_sites;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  Cluster cluster(options);
  WalterClient* setup = cluster.AddClient(0);
  Populate(cluster, setup, 0, kKeys, 100, 20);

  auto rng = std::make_shared<Rng>(29);
  // Moderate open-loop write load at VA; an operation "completes" when it is
  // disaster-safe durable, so the recorded latency is issue -> DS-durable
  // (the few-ms local commit is negligible against the WAN RTTs measured).
  auto factory = [rng](WalterClient* client) {
    return [client, rng](std::function<void(bool)> done) {
      auto tx = std::make_shared<Tx>(client);
      tx->Write(ObjectId{0, rng->Uniform(kKeys)}, std::string(100, 'w'));
      Tx::CommitOptions opts;
      opts.on_durable = [tx, done]() { done(true); };
      tx->Commit([tx](Status) {}, opts);
    };
  };

  WalterClient* client = cluster.AddClient(0);
  // 200 tx/s keeps batches flowing without saturating anything.
  OpenLoopLoad load(&cluster.sim(), 200, factory(client));
  LoadResult result = load.Run(Seconds(1), Seconds(20));

  SimDuration rtt_max = cluster.net().topology().MaxRttFrom(0);
  std::printf("%zu-sites: RTTmax=%.0fms  ds-durable latency p10=%.0fms p50=%.0fms p90=%.0fms "
              "(paper: ~U[%.0f, %.0f]ms)\n",
              num_sites, ToMillis(rtt_max), result.latency.Percentile(10) / 1000.0,
              result.latency.Percentile(50) / 1000.0, result.latency.Percentile(90) / 1000.0,
              ToMillis(rtt_max), 2 * ToMillis(rtt_max));
  return std::move(result.latency);
}

}  // namespace
}  // namespace walter

int main() {
  using namespace walter;
  std::printf("=== Figure 19: replication latency for disaster-safe durability ===\n\n");
  LatencyRecorder two = RunSites(2);
  LatencyRecorder three = RunSites(3);
  LatencyRecorder four = RunSites(4);
  std::printf("\n");
  PrintCdf("2-sites", two);
  PrintCdf("3-sites", three);
  PrintCdf("4-sites", four);
  std::printf("Expected shape: ~uniform between [RTTmax, 2*RTTmax] per configuration\n"
              "(2-sites 82ms, 3-sites 87ms, 4-sites 261ms RTTmax).\n");
  return 0;
}
