// Intra-site scale-out: throughput vs co-located servers (shards) per site.
//
// The paper's Walter is one server per site, so Figure 17 can only add
// capacity by adding sites. This bench shards each site's key-space across
// N in {1, 2, 4, 8} co-located servers and measures:
//
//   1. Read-mostly scaling: 2 sites, a fixed closed-loop client population,
//      95% single-read / 5% single-write transactions over containers spread
//      evenly across each site's shards. Reads route per-container to the
//      owning shard, so aggregate throughput should grow near-linearly until
//      the client population stops saturating the shards. The N=4 vs N=1
//      ratio is the headline (CI asserts >= 3x).
//
//   2. Cross-shard commit tax: at N=4, two-write transactions whose writes
//      land in one shard (fast commit, unchanged) or two shards of the same
//      site (intra-site 2PC over the LAN). Sweeping the cross-shard fraction
//      prices the tax in throughput, latency and abort rate; the slow-commit
//      counter confirms which path ran. With early lock release (the default)
//      a participant frees its prepare locks at the commit decision and
//      installs visibility watermarks instead of holding the locks until the
//      record propagates back, so lock holds stay at 2PC-round scale and the
//      tax is nearly flat across the sweep. WALTER_EARLY_LOCK_RELEASE=0
//      restores the release-at-propagation protocol and its abort cliff.
//
//      Each tax cell also records per-lock hold durations (kLockAcquire ->
//      kLockRelease trace matching) and the abort-reason breakdown (kTxAbort
//      aux: conflict / wound / timeout), and asserts at the end of the run
//      that no lock or visibility watermark leaked.
//
// Containers are picked shard-balanced (equal count per shard, via the public
// shard map), the way an operator provisioning a sharded site would lay out
// capacity; hash-random placement would only add imbalance noise to the
// scaling curve.
// `--wall` switches to the wall-clock threaded runtime instead: the same
// deployment (2 sites x 2 shards) driven by real worker threads and a real
// clock, sweeping the worker count at fixed load. Reported throughput is
// transactions per real second, CPU time comes from getrusage, and
// cores_utilized = cpu/wall shows whether the runtime actually spread the
// work across cores (the CI perf-smoke asserts W=4 beats W=1 on multi-core
// runners). Wall cells are nondeterministic by nature and never run in the
// default mode, whose output stays byte-identical.
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/obs/trace.h"

namespace walter {
namespace {

constexpr size_t kSites = 2;
constexpr uint64_t kKeysPerContainer = 400;
constexpr size_t kContainersPerShard = 4;
constexpr int kReadClientsPerSite = 192;  // enough to saturate 4 shards/site
constexpr int kTaxClientsPerSite = 64;
constexpr size_t kTaxShards = 4;

// Containers preferred at `site`, kContainersPerShard per shard, grouped by
// shard: result[shard] lists that shard's containers. Candidate ids step by
// kSites so id % num_sites keeps the intended preferred site.
std::vector<std::vector<ContainerId>> BalancedContainers(const ShardMap& map, SiteId site) {
  std::vector<std::vector<ContainerId>> by_shard(map.shards_at(site));
  size_t filled = 0;
  for (ContainerId c = site; filled < by_shard.size(); c += kSites) {
    std::vector<ContainerId>& bucket = by_shard[map.ShardOf(c, site)];
    if (bucket.size() < kContainersPerShard) {
      bucket.push_back(c);
      if (bucket.size() == kContainersPerShard) {
        ++filled;
      }
    }
  }
  return by_shard;
}

std::vector<ContainerId> Flatten(const std::vector<std::vector<ContainerId>>& by_shard) {
  std::vector<ContainerId> all;
  for (const auto& bucket : by_shard) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  return all;
}

struct CellResult {
  double ktps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double abort_rate = 0;  // failed / attempted in the measure window
  uint64_t fast_commits = 0;
  uint64_t slow_commits = 0;
  double lock_hold_p50_ms = 0;  // kLockAcquire -> kLockRelease, per lock set
  double lock_hold_p99_ms = 0;
  uint64_t aborts_conflict = 0;  // kTxAbort aux breakdown
  uint64_t aborts_wound = 0;
  uint64_t aborts_timeout = 0;
  MetricsRegistry metrics;
};

// Matches kLockAcquire -> kLockRelease per (server, tid) to measure how long
// 2PC lock sets are actually held, and tallies kTxAbort by reason. Installed
// on this cell's thread-local tracer for the duration of the run.
class LockHoldListener : public TraceListener {
 public:
  void OnTrace(const TraceEvent& e) override {
    switch (e.kind) {
      case TraceKind::kLockAcquire:
        acquired_[{e.site, e.tid}] = e.time;
        break;
      case TraceKind::kLockRelease: {
        auto it = acquired_.find({e.site, e.tid});
        if (it != acquired_.end()) {
          holds.Add(static_cast<double>(e.time - it->second));
          acquired_.erase(it);
        }
        break;
      }
      case TraceKind::kTxAbort:
        switch (static_cast<AbortReason>(e.aux)) {
          case AbortReason::kWound:
            ++aborts_wound;
            break;
          case AbortReason::kTimeout:
            ++aborts_timeout;
            break;
          default:
            ++aborts_conflict;  // kConflict, and legacy aborts with aux 0
            break;
        }
        break;
      default:
        break;
    }
  }

  LatencyRecorder holds;  // microseconds
  uint64_t aborts_conflict = 0;
  uint64_t aborts_wound = 0;
  uint64_t aborts_timeout = 0;

 private:
  std::map<std::pair<uint8_t, TxId>, SimTime> acquired_;
};

Cluster MakeCluster(size_t shards_per_site, uint64_t seed) {
  ClusterOptions options;
  options.num_sites = kSites;
  options.servers_per_site.assign(kSites, shards_per_site);
  options.seed = seed;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  return Cluster(options);
}

void FinishCell(Cluster& cluster, LoadResult& result, CellResult* cell) {
  cell->ktps = result.ThroughputKops();
  if (result.completed + result.failed > 0) {
    cell->abort_rate =
        static_cast<double>(result.failed) / static_cast<double>(result.completed + result.failed);
  }
  if (!result.latency.empty()) {
    LatencyRecorder::SummaryStats stats = result.latency.Stats();
    cell->p50_ms = stats.p50 / 1000.0;
    cell->p99_ms = stats.p99 / 1000.0;
  }
  for (SiteId v = 0; v < static_cast<SiteId>(cluster.num_servers()); ++v) {
    cell->fast_commits += cluster.server(v).stats().fast_commits;
    cell->slow_commits += cluster.server(v).stats().slow_commits;
  }
  result.ExportMetrics(cell->metrics);
  cluster.ExportMetrics(cell->metrics);
}

// --- read-mostly scaling sweep ---------------------------------------------

CellResult RunReadMostly(size_t shards_per_site, uint64_t seed, bool quick) {
  SimDuration warmup = quick ? Millis(100) : Millis(300);
  SimDuration measure = quick ? Millis(400) : Seconds(1.2);

  Cluster cluster = MakeCluster(shards_per_site, seed);
  std::vector<std::vector<ContainerId>> local(kSites);
  for (SiteId s = 0; s < kSites; ++s) {
    local[s] = Flatten(BalancedContainers(cluster.shard_map(), s));
    WalterClient* setup = cluster.AddClient(s);
    for (ContainerId c : local[s]) {
      Populate(cluster, setup, c, kKeysPerContainer, 100, 20);
    }
  }
  // Reads draw from every container cluster-wide (all replicated everywhere,
  // so every read is served locally by the owning shard); writes stay in
  // locally-preferred containers so they fast-commit.
  std::vector<ContainerId> all = local[0];
  for (SiteId s = 1; s < kSites; ++s) {
    all.insert(all.end(), local[s].begin(), local[s].end());
  }

  ClosedLoopLoad load(&cluster.sim());
  auto rng = std::make_shared<Rng>(seed * 31 + 7);
  for (SiteId s = 0; s < kSites; ++s) {
    for (int c = 0; c < kReadClientsPerSite; ++c) {
      WalterClient* client = cluster.AddClient(s);
      load.AddClient([client, rng, all, own = local[s]](std::function<void(bool)> done) {
        if (rng->NextDouble() < 0.95) {
          auto tx = std::make_shared<Tx>(client);
          ObjectId oid{all[rng->Uniform(all.size())], rng->Uniform(kKeysPerContainer)};
          tx->Read(oid, [tx, done = std::move(done)](Status s, std::optional<std::string>) {
            if (!s.ok()) {
              done(false);
              return;
            }
            tx->Commit([tx, done = std::move(done)](Status s2) { done(s2.ok()); });
          });
        } else {
          auto tx = std::make_shared<Tx>(client);
          tx->Write(ObjectId{own[rng->Uniform(own.size())], rng->Uniform(kKeysPerContainer)},
                    std::string(100, 'w'));
          tx->Commit([tx, done = std::move(done)](Status s) { done(s.ok()); });
        }
      });
    }
  }
  LoadResult result = load.Run(warmup, measure);
  CellResult cell;
  FinishCell(cluster, result, &cell);
  return cell;
}

// --- cross-shard commit tax -------------------------------------------------

CellResult RunCrossShardTax(double cross_fraction, uint64_t seed, bool quick) {
  SimDuration warmup = quick ? Millis(100) : Millis(300);
  SimDuration measure = quick ? Millis(400) : Seconds(1.2);

  Cluster cluster = MakeCluster(kTaxShards, seed);
  // Keep the per-shard container lists: a cross-shard pair is drawn from two
  // distinct shards' buckets, a same-shard pair from one container.
  std::vector<std::vector<std::vector<ContainerId>>> by_shard(kSites);
  for (SiteId s = 0; s < kSites; ++s) {
    by_shard[s] = BalancedContainers(cluster.shard_map(), s);
    WalterClient* setup = cluster.AddClient(s);
    for (ContainerId c : Flatten(by_shard[s])) {
      Populate(cluster, setup, c, kKeysPerContainer, 100, 20);
    }
  }

  ClosedLoopLoad load(&cluster.sim());
  auto rng = std::make_shared<Rng>(seed * 31 + 7);
  for (SiteId s = 0; s < kSites; ++s) {
    for (int c = 0; c < kTaxClientsPerSite; ++c) {
      WalterClient* client = cluster.AddClient(s);
      load.AddClient([client, rng, cross_fraction,
                      shards = by_shard[s]](std::function<void(bool)> done) {
        std::string value(100, 'w');
        auto tx = std::make_shared<Tx>(client);
        size_t a = rng->Uniform(shards.size());
        ContainerId c1 = shards[a][rng->Uniform(shards[a].size())];
        uint64_t k1 = rng->Uniform(kKeysPerContainer);
        tx->Write(ObjectId{c1, k1}, value);
        if (rng->NextDouble() < cross_fraction) {
          // Second write in a different shard of the same site: the commit
          // runs the intra-site 2PC slow path, coordinated by c1's shard.
          size_t b = (a + 1 + rng->Uniform(shards.size() - 1)) % shards.size();
          ContainerId c2 = shards[b][rng->Uniform(shards[b].size())];
          tx->Write(ObjectId{c2, rng->Uniform(kKeysPerContainer)}, value);
        } else {
          tx->Write(ObjectId{c1, (k1 + 7919) % kKeysPerContainer}, value);
        }
        tx->Commit([tx, done = std::move(done)](Status s) { done(s.ok()); });
      });
    }
  }
  LockHoldListener listener;
  Tracer::Get().SetListener(&listener);
  LoadResult result = load.Run(warmup, measure);
  // Let in-flight commits, decisions and propagation settle, then check that
  // nothing leaked: every prepare lock released, every watermark cleared.
  cluster.RunFor(Seconds(5));
  Tracer::Get().SetListener(nullptr);
  for (SiteId v = 0; v < static_cast<SiteId>(cluster.num_servers()); ++v) {
    if (cluster.server(v).lock_count() != 0 || cluster.server(v).watermark_count() != 0) {
      std::fprintf(stderr,
                   "bench_scaleout: leak at server %u after drain: %zu locks, %zu watermarks\n",
                   v, cluster.server(v).lock_count(), cluster.server(v).watermark_count());
      std::abort();
    }
  }
  CellResult cell;
  FinishCell(cluster, result, &cell);
  if (!listener.holds.empty()) {
    cell.lock_hold_p50_ms = listener.holds.Percentile(50) / 1000.0;
    cell.lock_hold_p99_ms = listener.holds.Percentile(99) / 1000.0;
  }
  cell.aborts_conflict = listener.aborts_conflict;
  cell.aborts_wound = listener.aborts_wound;
  cell.aborts_timeout = listener.aborts_timeout;
  return cell;
}

// --- wall-clock threaded runtime sweep --------------------------------------

struct WallCell {
  size_t workers = 0;
  uint64_t completed = 0;
  double wall_s = 0;
  double cpu_s = 0;
  double ktps = 0;   // completed transactions per real second, in thousands
  double cores = 0;  // cpu_s / wall_s
};

double CpuSeconds() {
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  getrusage(RUSAGE_SELF, &ru);
  auto sec = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) / 1e6;
  };
  return sec(ru.ru_utime) + sec(ru.ru_stime);
}

// One wall cell: the 2-site x 2-shard deployment on the threaded runtime with
// `workers` worker threads per site, driven by closed-loop client chains on
// their owner executors. Throughput is transactions per real second; CPU time
// (getrusage, whole process) over wall time says how many cores the runtime
// actually kept busy. Instant perf + Memory disk: the cell measures the
// runtime's dispatch capacity, not a simulated network.
WallCell RunWall(size_t workers, uint64_t seed, bool quick) {
  constexpr size_t kWallShardsPerSite = 2;
  constexpr int kWallClientsPerSite = 16;
  const int warmup_ms = quick ? 150 : 400;
  const int measure_ms = quick ? 600 : 2000;

  ClusterOptions options;
  options.num_sites = kSites;
  options.servers_per_site.assign(kSites, kWallShardsPerSite);
  options.seed = seed;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.runtime.workers = workers;
  options.runtime.time_scale = 50.0;
  Cluster cluster(options);

  std::vector<std::vector<ContainerId>> local(kSites);
  for (SiteId s = 0; s < kSites; ++s) {
    local[s] = Flatten(BalancedContainers(cluster.shard_map(), s));
  }

  struct Chain {
    WalterClient* client = nullptr;
    Rng rng{1};
    std::vector<ContainerId> own;
  };
  std::vector<std::unique_ptr<Chain>> chains;
  for (SiteId s = 0; s < kSites; ++s) {
    for (int c = 0; c < kWallClientsPerSite; ++c) {
      auto chain = std::make_unique<Chain>();
      chain->client = cluster.AddClient(s);
      chain->rng = Rng(seed * 977 + s * 131 + static_cast<uint64_t>(c));
      chain->own = local[s];
      chains.push_back(std::move(chain));
    }
  }

  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::atomic<int> active{0};
  std::atomic<uint64_t> completed{0};

  // 95% single-read / 5% single-write, same mix as the sim sweep. Unpopulated
  // reads return nil, which exercises the identical read path; the cell cares
  // about dispatch throughput, not values.
  std::function<void(Chain*)> next = [&](Chain* chain) {
    if (stop.load(std::memory_order_relaxed)) {
      active.fetch_sub(1);
      return;
    }
    auto done = [&, chain](bool ok) {
      if (ok && measuring.load(std::memory_order_relaxed)) {
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      next(chain);
    };
    auto tx = std::make_shared<Tx>(chain->client);
    if (chain->rng.NextDouble() < 0.95) {
      ObjectId oid{chain->own[chain->rng.Uniform(chain->own.size())],
                   chain->rng.Uniform(kKeysPerContainer)};
      tx->Read(oid, [tx, done](Status s, std::optional<std::string>) {
        if (!s.ok()) {
          done(false);
          return;
        }
        tx->Commit([tx, done](Status s2) { done(s2.ok()); });
      });
    } else {
      tx->Write(ObjectId{chain->own[chain->rng.Uniform(chain->own.size())],
                         chain->rng.Uniform(kKeysPerContainer)},
                std::string(100, 'w'));
      tx->Commit([tx, done](Status s) { done(s.ok()); });
    }
  };

  cluster.StartThreads();
  active.store(static_cast<int>(chains.size()));
  for (auto& chain : chains) {
    cluster.client_executor(chain->client)->Post([&, c = chain.get()]() { next(c); });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(warmup_ms));
  double cpu0 = CpuSeconds();
  auto t0 = std::chrono::steady_clock::now();
  measuring.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(measure_ms));
  measuring.store(false);
  auto t1 = std::chrono::steady_clock::now();
  double cpu1 = CpuSeconds();

  stop.store(true);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (active.load() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  cluster.StopThreads();
  if (active.load() != 0) {
    std::fprintf(stderr, "bench_scaleout --wall: %d chains stuck at shutdown\n",
                 active.load());
    std::abort();
  }

  WallCell cell;
  cell.workers = workers;
  cell.completed = completed.load();
  cell.wall_s = std::chrono::duration<double>(t1 - t0).count();
  cell.cpu_s = cpu1 - cpu0;
  cell.ktps = cell.wall_s > 0 ? static_cast<double>(cell.completed) / cell.wall_s / 1000.0 : 0;
  cell.cores = cell.wall_s > 0 ? cell.cpu_s / cell.wall_s : 0;
  return cell;
}

int RunWallSweep(const BenchOptions& opt) {
  const std::vector<size_t> worker_counts = {1, 2, 4};
  std::vector<WallCell> cells;
  // Sequential on purpose: each cell owns the machine's cores for its window.
  for (size_t w : worker_counts) {
    cells.push_back(RunWall(w, 9200 + w, opt.quick));
  }

  unsigned hw = std::thread::hardware_concurrency();
  std::printf("=== Wall-clock threaded runtime: %zu sites x 2 shards, %u hardware cores ===\n\n",
              kSites, hw);
  TablePrinter table({"workers", "Ktps (real)", "wall (s)", "cpu (s)", "cores utilized"});
  for (const WallCell& c : cells) {
    table.AddRow({std::to_string(c.workers), TablePrinter::Fmt(c.ktps),
                  TablePrinter::Fmt(c.wall_s, 2), TablePrinter::Fmt(c.cpu_s, 2),
                  TablePrinter::Fmt(c.cores, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  double speedup = cells[0].ktps > 0 ? cells.back().ktps / cells[0].ktps : 0;
  std::printf(
      "Headline: W=%zu real-time throughput is %.2fx W=1 on %u hardware cores.\n"
      "Wall cells are nondeterministic; the CI perf-smoke asserts the speedup\n"
      "only on multi-core runners. cores_utilized > 1 shows the runtime\n"
      "actually spread server executors across threads.\n",
      worker_counts.back(), speedup, hw);

  BenchJson json;
  json.Set("bench", std::string("scaleout_wall"));
  json.Set("quick", opt.quick ? 1.0 : 0.0);
  json.Set("hardware_cores", static_cast<double>(hw));
  for (const WallCell& c : cells) {
    std::string key = "wall_w" + std::to_string(c.workers);
    json.Set(key + "_ktps", c.ktps);
    json.Set(key + "_cores_utilized", c.cores);
    json.Set(key + "_completed", static_cast<double>(c.completed));
  }
  json.Set("wall_speedup_w4_vs_w1", speedup);
  return json.WriteIfRequested(opt.json_path) ? 0 : 1;
}

}  // namespace
}  // namespace walter

int main(int argc, char** argv) {
  using walter::CellResult;
  using walter::TablePrinter;
  walter::BenchOptions opt = walter::ParseBenchArgs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wall") == 0) {
      return walter::RunWallSweep(opt);
    }
  }

  const std::vector<size_t> shard_counts = {1, 2, 4, 8};
  const std::vector<double> cross_fractions = {0.0, 0.1, 0.5, 1.0};

  // One independent simulation per cell; shard sweep first, then tax sweep.
  walter::ParallelRunner runner(opt.jobs);
  size_t total = shard_counts.size() + cross_fractions.size();
  std::vector<CellResult> results = runner.Map<CellResult>(total, [&](size_t i) {
    if (i < shard_counts.size()) {
      return walter::RunReadMostly(shard_counts[i], 9000 + shard_counts[i], opt.quick);
    }
    double f = cross_fractions[i - shard_counts.size()];
    return walter::RunCrossShardTax(f, 9100 + static_cast<uint64_t>(f * 100), opt.quick);
  });

  std::printf("=== Intra-site scale-out: %zu sites, N shards per site ===\n\n",
              walter::kSites);

  std::printf("-- Read-mostly (95%% read) throughput vs shards per site --\n");
  {
    TablePrinter table({"shards/site", "Ktps", "speedup vs N=1", "p50 (ms)", "p99 (ms)"});
    for (size_t i = 0; i < shard_counts.size(); ++i) {
      table.AddRow({std::to_string(shard_counts[i]), TablePrinter::Fmt(results[i].ktps),
                    TablePrinter::Fmt(results[i].ktps / results[0].ktps, 2),
                    TablePrinter::Fmt(results[i].p50_ms, 2),
                    TablePrinter::Fmt(results[i].p99_ms, 2)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("-- Cross-shard commit tax at N=%zu (two-write transactions) --\n",
              walter::kTaxShards);
  {
    TablePrinter table({"cross-shard frac", "Ktps", "p50 (ms)", "p99 (ms)", "abort %",
                        "slow commits", "hold p50 (ms)", "hold p99 (ms)"});
    for (size_t i = 0; i < cross_fractions.size(); ++i) {
      const CellResult& r = results[shard_counts.size() + i];
      table.AddRow({TablePrinter::Fmt(cross_fractions[i], 2), TablePrinter::Fmt(r.ktps),
                    TablePrinter::Fmt(r.p50_ms, 2), TablePrinter::Fmt(r.p99_ms, 2),
                    TablePrinter::Fmt(r.abort_rate * 100.0),
                    std::to_string(r.slow_commits),
                    TablePrinter::Fmt(r.lock_hold_p50_ms, 2),
                    TablePrinter::Fmt(r.lock_hold_p99_ms, 2)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  {
    TablePrinter table({"cross-shard frac", "aborts: conflict", "wound", "timeout"});
    for (size_t i = 0; i < cross_fractions.size(); ++i) {
      const CellResult& r = results[shard_counts.size() + i];
      table.AddRow({TablePrinter::Fmt(cross_fractions[i], 2),
                    std::to_string(r.aborts_conflict), std::to_string(r.aborts_wound),
                    std::to_string(r.aborts_timeout)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  double speedup_n4 = results[2].ktps / results[0].ktps;
  std::printf(
      "Headline: N=4 read-mostly throughput is %.2fx N=1 (acceptance: >= 3x).\n"
      "With early lock release a participant's prepare locks last only from\n"
      "the prepare to the commit decision (Figure 13's remote-commit guard now\n"
      "gates visibility through per-object watermarks, not through the locks),\n"
      "so cross-shard throughput stays near the f=0 baseline and aborts stay\n"
      "low. Set WALTER_EARLY_LOCK_RELEASE=0 to reproduce the old abort cliff,\n"
      "where lock holds stretch to the intra-site visibility delay.\n",
      speedup_n4);

  walter::BenchJson json;
  json.Set("bench", std::string("scaleout"));
  json.Set("quick", opt.quick ? 1.0 : 0.0);
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    std::string key = "read_mostly_n" + std::to_string(shard_counts[i]);
    json.Set(key + "_ktps", results[i].ktps);
    json.Set(key + "_p50_ms", results[i].p50_ms);
  }
  json.Set("speedup_n4_vs_n1", speedup_n4);
  for (size_t i = 0; i < cross_fractions.size(); ++i) {
    const CellResult& r = results[shard_counts.size() + i];
    std::string key = "cross" + std::to_string(static_cast<int>(cross_fractions[i] * 100));
    json.Set(key + "_ktps", r.ktps);
    json.Set(key + "_p50_ms", r.p50_ms);
    json.Set(key + "_p99_ms", r.p99_ms);
    json.Set(key + "_abort_rate", r.abort_rate);
    json.Set(key + "_slow_commits", static_cast<double>(r.slow_commits));
    json.Set(key + "_lock_hold_p50_ms", r.lock_hold_p50_ms);
    json.Set(key + "_lock_hold_p99_ms", r.lock_hold_p99_ms);
    json.Set(key + "_aborts_conflict", static_cast<double>(r.aborts_conflict));
    json.Set(key + "_aborts_wound", static_cast<double>(r.aborts_wound));
    json.Set(key + "_aborts_timeout", static_cast<double>(r.aborts_timeout));
  }
  return json.WriteIfRequested(opt.json_path) ? 0 : 1;
}
