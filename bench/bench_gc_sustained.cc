// Bounded memory under sustained load (EXPERIMENTS.md).
//
// A Fig-17-style write-heavy closed-loop workload runs for >=10x the Figure 17
// measurement window while the stability-frontier GC is active (the default).
// The run samples every memory gauge the GC bounds — unfolded history entries,
// WAL bytes, retained local commits, retained dedup outcomes — at fixed
// intervals, and self-checks two properties:
//
//   1. Plateau: each gauge's second-half peak stays within kPlateauSlack of
//      its first-half peak. Unbounded growth is ~linear in commits, so a
//      leaking gauge roughly doubles across the halves and fails loudly.
//   2. GC effectiveness: an identical GC-disabled control run must end with
//      several times more retained history than the GC run ever peaks at.
//
// The sampled series is printed as a table and exported via --json (the CI
// perf-smoke job enforces a memory ceiling from those gauges).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr uint64_t kKeysPerSite = 1'000;
constexpr int kClientsPerSite = 16;
constexpr size_t kSites = 3;
constexpr double kPlateauSlack = 1.5;

struct Sample {
  double t_seconds = 0;
  uint64_t history_entries = 0;
  uint64_t wal_bytes = 0;
  uint64_t retained_commits = 0;
  uint64_t retained_outcomes = 0;
};

struct RunResult {
  std::vector<Sample> samples;  // cluster-wide totals per window
  uint64_t gc_runs = 0;
  uint64_t gc_folded = 0;
  uint64_t wal_truncated = 0;
  uint64_t commits = 0;
};

RunResult RunSustained(bool gc_enabled, uint64_t seed, bool quick) {
  // Figure 17 measures 1.2s (0.4s quick); sustain >= 10x that.
  SimDuration warmup = quick ? Millis(200) : Seconds(1);
  SimDuration window = quick ? Millis(500) : Seconds(2);
  int windows = quick ? 8 : 10;

  ClusterOptions options;
  options.num_sites = kSites;
  options.seed = seed;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  options.gc.enabled = gc_enabled;
  // The default 30s dedup-outcome retention (sized for real client retry
  // windows) exceeds the whole run: scale it down so the gauge can reach its
  // steady state inside the measurement horizon.
  options.server.tx_outcome_retention = quick ? Seconds(1) : Seconds(4);
  if (quick) {
    // The default 5s checkpoint cadence never fires inside a ~4s quick run.
    options.gc.interval = Millis(100);
    options.gc.checkpoint_every = Millis(500);
  }
  Cluster cluster(options);
  for (SiteId s = 0; s < kSites; ++s) {
    WalterClient* setup = cluster.AddClient(s);
    Populate(cluster, setup, /*container=*/s, kKeysPerSite, 100, 20);
  }

  // Closed-loop writers against the local-preferred container: maximum
  // history churn, every commit replicated everywhere.
  auto rng = std::make_shared<Rng>(seed * 31 + 7);
  for (SiteId s = 0; s < kSites; ++s) {
    for (int c = 0; c < kClientsPerSite; ++c) {
      WalterClient* client = cluster.AddClient(s);
      auto write = std::make_shared<OpFactory>(
          WriteTxFactory(client, s, kKeysPerSite, /*tx_size=*/1, 100, rng));
      auto pump = std::make_shared<std::function<void(bool)>>();
      *pump = [write, pump](bool) { (*write)([pump](bool ok) { (*pump)(ok); }); };
      (*pump)(true);
    }
  }

  cluster.RunFor(warmup);
  RunResult result;
  for (int w = 1; w <= windows; ++w) {
    cluster.RunFor(window);
    Sample sample;
    sample.t_seconds = static_cast<double>(cluster.sim().Now()) / Seconds(1);
    for (SiteId s = 0; s < kSites; ++s) {
      WalterServer& server = cluster.server(s);
      sample.history_entries += server.store().TotalEntryCount();
      sample.wal_bytes += server.store().wal().size();
      sample.retained_commits += server.retained_local_commits();
      sample.retained_outcomes += server.retained_tx_outcomes();
    }
    result.samples.push_back(sample);
  }
  for (SiteId s = 0; s < kSites; ++s) {
    result.gc_runs += cluster.server(s).stats().gc_runs;
    result.gc_folded += cluster.server(s).stats().gc_folded_entries;
    result.wal_truncated += cluster.server(s).stats().wal_truncated_bytes;
    result.commits += cluster.server(s).committed_vts().at(s);
  }
  return result;
}

// Peak of a gauge over samples [begin, end).
uint64_t Peak(const std::vector<Sample>& samples, size_t begin, size_t end,
              uint64_t Sample::* gauge) {
  uint64_t peak = 0;
  for (size_t i = begin; i < end && i < samples.size(); ++i) {
    peak = std::max(peak, samples[i].*gauge);
  }
  return peak;
}

bool CheckPlateau(const char* name, const std::vector<Sample>& samples,
                  uint64_t Sample::* gauge) {
  size_t half = samples.size() / 2;
  uint64_t first = Peak(samples, 0, half, gauge);
  uint64_t second = Peak(samples, half, samples.size(), gauge);
  bool ok = static_cast<double>(second) <=
            kPlateauSlack * static_cast<double>(std::max<uint64_t>(first, 1));
  std::printf("%-18s first-half peak %10llu  second-half peak %10llu  %s\n", name,
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(second), ok ? "plateau" : "GROWING");
  return ok;
}

}  // namespace
}  // namespace walter

int main(int argc, char** argv) {
  using walter::RunResult;
  using walter::Sample;
  using walter::TablePrinter;
  walter::BenchOptions opt = walter::ParseBenchArgs(argc, argv);

  // The GC run and its GC-disabled control are independent simulations.
  walter::ParallelRunner runner(opt.jobs);
  std::vector<RunResult> runs = runner.Map<RunResult>(2, [&](size_t i) {
    return walter::RunSustained(/*gc_enabled=*/i == 0, /*seed=*/42, opt.quick);
  });
  const RunResult& gc = runs[0];
  const RunResult& control = runs[1];

  std::printf("=== Sustained write load: memory gauges with stability-frontier GC ===\n\n");
  {
    TablePrinter table({"t (s)", "history entries", "wal bytes", "retained commits",
                        "retained outcomes"});
    for (const Sample& s : gc.samples) {
      table.AddRow({TablePrinter::Fmt(s.t_seconds), std::to_string(s.history_entries),
                    std::to_string(s.wal_bytes), std::to_string(s.retained_commits),
                    std::to_string(s.retained_outcomes)});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf("commits %llu, gc runs %llu, entries folded %llu, wal bytes truncated %llu\n\n",
              static_cast<unsigned long long>(gc.commits),
              static_cast<unsigned long long>(gc.gc_runs),
              static_cast<unsigned long long>(gc.gc_folded),
              static_cast<unsigned long long>(gc.wal_truncated));

  bool ok = true;
  ok &= walter::CheckPlateau("history entries", gc.samples, &Sample::history_entries);
  ok &= walter::CheckPlateau("wal bytes", gc.samples, &Sample::wal_bytes);
  ok &= walter::CheckPlateau("retained commits", gc.samples, &Sample::retained_commits);
  ok &= walter::CheckPlateau("retained outcomes", gc.samples, &Sample::retained_outcomes);

  // Effectiveness: without GC the same workload must retain far more history.
  uint64_t gc_peak = walter::Peak(gc.samples, 0, gc.samples.size(),
                                  &Sample::history_entries);
  uint64_t control_final = control.samples.back().history_entries;
  bool effective = control_final >= 3 * std::max<uint64_t>(gc_peak, 1);
  std::printf("\nGC-off control final history entries: %llu (GC-on peak %llu) — %s\n",
              static_cast<unsigned long long>(control_final),
              static_cast<unsigned long long>(gc_peak),
              effective ? "GC is folding real state" : "GC FOLDED TOO LITTLE");
  ok &= effective;
  ok &= gc.gc_runs > 0 && gc.gc_folded > 0 && gc.wal_truncated > 0;

  walter::BenchJson json;
  json.Set("bench", std::string("gc_sustained"));
  json.Set("quick", opt.quick ? 1.0 : 0.0);
  json.Set("commits", static_cast<double>(gc.commits));
  json.Set("gc_runs", static_cast<double>(gc.gc_runs));
  json.Set("gc_folded_entries", static_cast<double>(gc.gc_folded));
  json.Set("wal_truncated_bytes", static_cast<double>(gc.wal_truncated));
  json.Set("history_entries_peak", static_cast<double>(gc_peak));
  json.Set("history_entries_final", static_cast<double>(gc.samples.back().history_entries));
  json.Set("wal_bytes_final", static_cast<double>(gc.samples.back().wal_bytes));
  json.Set("retained_commits_final",
           static_cast<double>(gc.samples.back().retained_commits));
  json.Set("retained_outcomes_final",
           static_cast<double>(gc.samples.back().retained_outcomes));
  json.Set("control_history_entries_final", static_cast<double>(control_final));
  json.Set("plateau_ok", ok ? 1.0 : 0.0);
  if (!json.WriteIfRequested(opt.json_path)) {
    return 1;
  }
  if (!ok) {
    std::printf("\nFAIL: memory gauges did not plateau under sustained load\n");
    return 1;
  }
  std::printf("\nOK: all gauges plateaued; GC keeps memory bounded\n");
  return 0;
}
