// Benchmark harness: closed-loop and open-loop load drivers over the simulated
// cluster, latency/throughput collection, and the workload helpers shared by
// the per-figure benchmark binaries.
//
// Conventions (matching Section 8): throughput experiments run closed loops
// with many clients per site ("issue transactions as fast as possible");
// latency experiments run an open loop at a configurable fraction of the
// measured maximum throughput (Figure 18 uses 70%). All times are virtual.
#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/cluster.h"

namespace walter {

// Starts one operation; must invoke done(ok) exactly once when it completes.
using OpFactory = std::function<void(std::function<void(bool ok)> done)>;

struct LoadResult {
  uint64_t completed = 0;
  uint64_t failed = 0;
  double seconds = 0;
  LatencyRecorder latency;  // per-op latency in microseconds (measure window)

  double Throughput() const { return seconds > 0 ? completed / seconds : 0; }
  double ThroughputKops() const { return Throughput() / 1000.0; }
};

// Drives registered client loops as fast as each completes, measuring during
// [warmup, warmup+measure).
class ClosedLoopLoad {
 public:
  explicit ClosedLoopLoad(Simulator* sim) : sim_(sim) {}

  void AddClient(OpFactory factory) { factories_.push_back(std::move(factory)); }

  LoadResult Run(SimDuration warmup, SimDuration measure);

 private:
  Simulator* sim_;
  std::vector<OpFactory> factories_;
};

// Poisson arrivals at `rate` ops/sec; each arrival runs the factory once.
class OpenLoopLoad {
 public:
  OpenLoopLoad(Simulator* sim, double rate_per_sec, OpFactory factory)
      : sim_(sim), rate_(rate_per_sec), factory_(std::move(factory)) {}

  LoadResult Run(SimDuration warmup, SimDuration measure);

 private:
  Simulator* sim_;
  double rate_;
  OpFactory factory_;
};

// --- Workload helpers ---------------------------------------------------------

// Commits `count` objects of `value_size` bytes into `container`, local ids
// [0, count), through real transactions at the container's preferred site.
void Populate(Cluster& cluster, WalterClient* client, ContainerId container, uint64_t count,
              size_t value_size, size_t batch = 10);

// Factories for the microbenchmark transactions of Sections 8.2-8.5: read-only
// or write-only transactions touching `tx_size` random 100-byte objects out of
// `keys` in `container`.
OpFactory ReadTxFactory(WalterClient* client, ContainerId container, uint64_t keys,
                        size_t tx_size, std::shared_ptr<Rng> rng);
OpFactory WriteTxFactory(WalterClient* client, ContainerId container, uint64_t keys,
                         size_t tx_size, size_t value_size, std::shared_ptr<Rng> rng);

// Prints "name: <cdf>" as tab-separated (latency_ms, fraction) rows, for
// side-by-side comparison with the paper's CDF figures.
void PrintCdf(const std::string& name, LatencyRecorder& recorder, size_t points = 20);

// Formats a throughput in Ktps with one decimal.
std::string Ktps(double ops_per_sec);

}  // namespace walter

#endif  // BENCH_HARNESS_H_
