// Benchmark harness: closed-loop and open-loop load drivers over the simulated
// cluster, latency/throughput collection, and the workload helpers shared by
// the per-figure benchmark binaries.
//
// Conventions (matching Section 8): throughput experiments run closed loops
// with many clients per site ("issue transactions as fast as possible");
// latency experiments run an open loop at a configurable fraction of the
// measured maximum throughput (Figure 18 uses 70%). All times are virtual.
#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/cluster.h"
#include "src/obs/metrics.h"

namespace walter {

// --- Experiment runner & reporting -------------------------------------------

// Shared command-line conventions of the bench binaries.
struct BenchOptions {
  int jobs = 1;            // worker threads for independent simulation cells
  bool quick = false;      // reduced matrix/duration for CI smoke runs
  std::string json_path;   // when nonempty, also emit metrics as JSON here
};

// Parses --jobs N, --quick and --json PATH (unrecognized arguments are
// ignored). With no --jobs, the WALTER_BENCH_JOBS environment variable
// applies; the default is 1.
BenchOptions ParseBenchArgs(int argc, char** argv);

// Deterministic machine-readable metrics alongside the text tables: insertion-
// ordered flat key -> value pairs rendered as one JSON object.
class BenchJson {
 public:
  void Set(const std::string& key, double value);
  void Set(const std::string& key, const std::string& value);

  std::string Render() const;
  // Writes Render() to path; empty path is a no-op. Returns false on IO error.
  bool WriteIfRequested(const std::string& path) const;

  // Renders every registry point as "<prefix><name>[.s<site>]": value.
  void SetAll(const MetricsRegistry& metrics, const std::string& prefix = "");

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Fans independent simulation cells of a sweep out to a thread pool. Each cell
// must build its own private Simulator/Cluster (cells share nothing), so any
// interleaving of cells is safe; results are returned in cell order, making
// the merged output byte-identical for every job count.
class ParallelRunner {
 public:
  explicit ParallelRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

  template <typename R>
  std::vector<R> Map(size_t cells, const std::function<R(size_t cell)>& fn) const {
    std::vector<R> results(cells);
    if (jobs_ == 1 || cells <= 1) {
      for (size_t i = 0; i < cells; ++i) {
        results[i] = fn(i);
      }
      return results;
    }
    std::atomic<size_t> next{0};
    auto worker = [&]() {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= cells) {
          return;
        }
        results[i] = fn(i);
      }
    };
    std::vector<std::thread> pool;
    size_t n = std::min<size_t>(static_cast<size_t>(jobs_), cells);
    pool.reserve(n);
    for (size_t t = 0; t < n; ++t) {
      pool.emplace_back(worker);
    }
    for (auto& t : pool) {
      t.join();
    }
    return results;
  }

 private:
  int jobs_;
};

// Starts one operation; must invoke done(ok) exactly once when it completes.
using OpFactory = std::function<void(std::function<void(bool ok)> done)>;

struct LoadResult {
  uint64_t completed = 0;
  uint64_t failed = 0;
  double seconds = 0;
  LatencyRecorder latency;  // per-op latency in microseconds (measure window)

  double Throughput() const { return seconds > 0 ? completed / seconds : 0; }
  double ThroughputKops() const { return Throughput() / 1000.0; }

  // Dumps the load-driver counters into the shared registry ("bench.*" names).
  void ExportMetrics(MetricsRegistry& metrics) const {
    metrics.Set("bench.completed", kNoSite, static_cast<double>(completed));
    metrics.Set("bench.failed", kNoSite, static_cast<double>(failed));
    metrics.Set("bench.throughput_ops", kNoSite, Throughput());
  }
};

// Drives registered client loops as fast as each completes, measuring during
// [warmup, warmup+measure).
class ClosedLoopLoad {
 public:
  explicit ClosedLoopLoad(Simulator* sim) : sim_(sim) {}

  void AddClient(OpFactory factory) { factories_.push_back(std::move(factory)); }

  LoadResult Run(SimDuration warmup, SimDuration measure);

 private:
  Simulator* sim_;
  std::vector<OpFactory> factories_;
};

// Poisson arrivals at `rate` ops/sec; each arrival runs the factory once.
class OpenLoopLoad {
 public:
  OpenLoopLoad(Simulator* sim, double rate_per_sec, OpFactory factory)
      : sim_(sim), rate_(rate_per_sec), factory_(std::move(factory)) {}

  LoadResult Run(SimDuration warmup, SimDuration measure);

 private:
  Simulator* sim_;
  double rate_;
  OpFactory factory_;
};

// --- Workload helpers ---------------------------------------------------------

// Commits `count` objects of `value_size` bytes into `container`, local ids
// [0, count), through real transactions at the container's preferred site.
void Populate(Cluster& cluster, WalterClient* client, ContainerId container, uint64_t count,
              size_t value_size, size_t batch = 10);

// Factories for the microbenchmark transactions of Sections 8.2-8.5: read-only
// or write-only transactions touching `tx_size` random 100-byte objects out of
// `keys` in `container`.
OpFactory ReadTxFactory(WalterClient* client, ContainerId container, uint64_t keys,
                        size_t tx_size, std::shared_ptr<Rng> rng);
OpFactory WriteTxFactory(WalterClient* client, ContainerId container, uint64_t keys,
                         size_t tx_size, size_t value_size, std::shared_ptr<Rng> rng);

// Prints "name: <cdf>" as tab-separated (latency_ms, fraction) rows, for
// side-by-side comparison with the paper's CDF figures.
void PrintCdf(const std::string& name, LatencyRecorder& recorder, size_t points = 20);

// Formats a throughput in Ktps with one decimal.
std::string Ktps(double ops_per_sec);

}  // namespace walter

#endif  // BENCH_HARNESS_H_
