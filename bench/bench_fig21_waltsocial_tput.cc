// Figure 21 — Transaction size and throughput for WaltSocial operations.
//
// Setup per Section 8.6: 4 EC2 sites, users homed round-robin, each
// pre-seeded with status updates and wall posts; many closed-loop clients per
// site issue one operation type (or the mixed workloads).
//
// Paper's table (throughput in Kops/s):
//   read-info 40, befriend 20, status-update 18, post-message 16.5,
//   mix1 (90% read-info) 34, mix2 (80% read-info) 32.
// Substitution: 20,000 users instead of 400,000 — user count only scales the
// data volume, not the per-operation footprint that bounds throughput.
#include <array>
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/harness.h"
#include "src/apps/waltsocial/waltsocial.h"

namespace walter {
namespace {

constexpr uint64_t kUsers = 20'000;
constexpr int kClientsPerSite = 48;
constexpr SimDuration kWarmup = Millis(300);
constexpr SimDuration kMeasure = Seconds(1.2);

std::unique_ptr<Cluster> MakeCluster() {
  ClusterOptions options;
  options.num_sites = 4;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  auto cluster = std::make_unique<Cluster>(options);

  // Seed profiles plus a couple of statuses and wall posts per sampled user
  // (sampling keeps setup time sane; reads of unseeded users return nil/empty
  // csets with identical cost in this model).
  for (SiteId s = 0; s < 4; ++s) {
    WalterClient* client = cluster->AddClient(s);
    WaltSocial app(client);
    uint64_t created = 0;
    for (UserId u = s; u < kUsers && created < 2000; u += 4, ++created) {
      bool done = false;
      app.CreateUser(u, "user-" + std::to_string(u), [&](Status) { done = true; });
      while (!done && cluster->sim().Step()) {
      }
    }
  }
  return cluster;
}

enum class Op { kReadInfo, kBefriend, kStatusUpdate, kPostMessage };

OpFactory MakeOp(WaltSocial* app, SiteId site, Op op, std::shared_ptr<Rng> rng) {
  // Users homed at `site` are u % 4 == site.
  auto local_user = [site, rng]() { return (rng->Uniform(kUsers / 4)) * 4 + site; };
  auto any_user = [rng]() { return rng->Uniform(kUsers); };
  switch (op) {
    case Op::kReadInfo:
      return [app, any_user](std::function<void(bool)> done) {
        app->ReadInfo(any_user(), [done = std::move(done)](Status s, WaltSocial::UserInfo) {
          done(s.ok());
        });
      };
    case Op::kBefriend:
      return [app, local_user, any_user](std::function<void(bool)> done) {
        app->Befriend(local_user(), any_user(),
                      [done = std::move(done)](Status s) { done(s.ok()); });
      };
    case Op::kStatusUpdate:
      return [app, local_user](std::function<void(bool)> done) {
        app->StatusUpdate(local_user(), "status!",
                          [done = std::move(done)](Status s) { done(s.ok()); });
      };
    case Op::kPostMessage:
      return [app, local_user, any_user](std::function<void(bool)> done) {
        app->PostMessage(local_user(), any_user(), "hello!",
                         [done = std::move(done)](Status s) { done(s.ok()); });
      };
  }
  return {};
}

// mix weights: {read-info, befriend, status-update, post-message}
double RunWorkload(const std::array<double, 4>& weights, uint64_t seed) {
  auto cluster = MakeCluster();
  auto rng = std::make_shared<Rng>(seed);
  std::vector<std::unique_ptr<WaltSocial>> apps;
  ClosedLoopLoad load(&cluster->sim());
  for (SiteId s = 0; s < 4; ++s) {
    for (int c = 0; c < kClientsPerSite; ++c) {
      apps.push_back(std::make_unique<WaltSocial>(cluster->AddClient(s)));
      WaltSocial* app = apps.back().get();
      std::array<OpFactory, 4> ops = {
          MakeOp(app, s, Op::kReadInfo, rng), MakeOp(app, s, Op::kBefriend, rng),
          MakeOp(app, s, Op::kStatusUpdate, rng), MakeOp(app, s, Op::kPostMessage, rng)};
      load.AddClient([rng, weights, ops = std::move(ops)](std::function<void(bool)> done) {
        double dice = rng->NextDouble();
        double acc = 0;
        for (size_t i = 0; i < 4; ++i) {
          acc += weights[i];
          if (dice < acc || i == 3) {
            ops[i](std::move(done));
            return;
          }
        }
      });
    }
  }
  return load.Run(kWarmup, kMeasure).ThroughputKops();
}

}  // namespace
}  // namespace walter

int main() {
  using walter::TablePrinter;
  std::printf("=== Figure 21: WaltSocial operation throughput (4 sites, 20k users) ===\n\n");

  struct Row {
    const char* name;
    std::array<double, 4> mix;
    const char* objs_read;
    const char* objs_written;
    const char* csets_written;
    const char* paper_kops;
  };
  const Row rows[] = {
      {"read-info", {1, 0, 0, 0}, "3", "0", "0", "40"},
      {"befriend", {0, 1, 0, 0}, "2", "0", "2", "20"},
      {"status-update", {0, 0, 1, 0}, "1", "2", "2", "18"},
      {"post-message", {0, 0, 0, 1}, "2", "2", "2", "16.5"},
      {"mix1 (90% read-info)", {0.9, 0.033, 0.033, 0.034}, "2.9", "0.5", "0.3", "34"},
      {"mix2 (80% read-info)", {0.8, 0.066, 0.066, 0.068}, "2.8", "0.7", "0.5", "32"},
  };

  TablePrinter table({"Operation", "objs+csets read", "objs written", "csets written",
                      "Kops/s", "paper"});
  uint64_t seed = 2100;
  for (const Row& row : rows) {
    double kops = walter::RunWorkload(row.mix, seed++);
    table.AddRow({row.name, row.objs_read, row.objs_written, row.csets_written,
                  TablePrinter::Fmt(kops), row.paper_kops});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Expected shape: read-info fastest; update ops ordered by number of\n"
              "objects accessed; mixes dominated by read-info.\n");
  return 0;
}
