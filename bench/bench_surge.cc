// Overload and shedding: skewed/surging load against the admission-control +
// retry-budget defenses, plus the knee-finding sweep that calibrates them.
//
// Cells (each an independent simulation; merged output is byte-identical for
// any --jobs):
//
//   1. Knee sweep: constant offered rates, defenses on, 80% read / 20% write
//      over Zipf(1.1) keys. The knee is the offered rate with the highest
//      goodput; its goodput is the peak the degradation cells compare against.
//
//   2. Overload pair at 2x the knee: defenses on (admission rejects + client
//      retry budgets shed the excess; goodput must stay >= 50% of peak with
//      bounded p99 — the CI perf-smoke gate) and defenses off (every arrival
//      queues, RPC timeouts double the offered load, goodput collapses and
//      p99 runs away — recorded as the collapse_ratio).
//
//   3. Hot-key cells: Zipf s in {0.9, 1.1, 1.3} near the knee. Rising skew
//      concentrates writes on a few hot keys (lock conflicts, aborts) and
//      reads on one server's queue; the cells record how the defenses price
//      that in goodput/p99/sheds.
//
//   4. Flash crowd: base load steps 4x over a 200ms ramp, holds, steps back.
//      Asserts the surge drains: no parked read, gap-parked commit, admitted
//      token or lock survives the run.
//
//   5. Diurnal imbalance: two anti-phase sinusoidal schedules, one per site —
//      the geographic day/night skew — driven concurrently.
//
//   6. PSI under shedding: Zipf(1.3) read+write transactions above the knee
//      with defenses on; per-site commit logs and confirmed reads feed the
//      PSI checker, which must report zero violations — shedding may abort
//      transactions, never corrupt the ones that commit.
//
// Defenses are per-cell options here; the WALTER_ADMISSION=0 kill switch
// (cluster-level) force-disables them regardless, which is what the CI
// byte-identity check uses against the figure benches.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/harness.h"
#include "src/psi/checker.h"
#include "src/workload/workload.h"

namespace walter {
namespace {

constexpr size_t kSites = 2;
constexpr uint64_t kKeys = 2048;  // per container
constexpr int kClientsPerSite = 32;
constexpr double kBaseRate = 60000.0;  // total ops/sec across both sites

struct SurgeCell {
  double offered_rate = 0;
  double goodput = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t admit_rejects = 0;
  uint64_t overload_retries = 0;
  uint64_t overload_sheds = 0;
  uint64_t cpu_queue_peak = 0;  // max over servers
  // Diurnal cell only: per-site goodput split.
  double site_goodput[kSites] = {0, 0};
};

struct CellSetup {
  ClusterOptions options;
  std::unique_ptr<Cluster> cluster;
  std::vector<WalterClient*> clients;         // all sites, grouped by site
  std::vector<WalterClient*> by_site[kSites];
};

// `observer` (optional) is attached before Populate so an attached checker
// sees every commit, including the populate transactions' values.
CellSetup MakeSetup(bool defenses, uint64_t seed,
                    WalterServer::CommitObserver observer = nullptr) {
  CellSetup setup;
  setup.options.num_sites = kSites;
  setup.options.seed = seed;
  setup.options.server.perf = PerfModel::Ec2();
  setup.options.server.disk = DiskConfig::Memory();
  // Impatient clients, the ingredient real overload collapse needs: once the
  // undefended queue delay crosses the RPC timeout, every waiting client
  // retransmits (the server does the work again), the queue compounds, and
  // responses land after the caller gave up. The defended cells keep the
  // queue an order of magnitude below this timeout.
  setup.options.client.rpc_timeout = Millis(100);
  if (defenses) {
    // Queue cap ~ 10ms of CPU backlog (Poisson bursts must not trip it below
    // the knee); inflight cap bounds concurrent admitted work; a small
    // refilling token bucket bounds each client's retry amplification under
    // a sustained surge.
    setup.options.server.admission_max_queue = 512;
    setup.options.server.admission_max_inflight = 2048;
    setup.options.client.overload_retry_tokens = 8;
    setup.options.client.overload_token_refill_per_s = 20.0;
  }
  setup.cluster = std::make_unique<Cluster>(setup.options);
  if (observer) {
    setup.cluster->ObserveCommits(std::move(observer));
  }
  for (SiteId s = 0; s < kSites; ++s) {
    WalterClient* populate = setup.cluster->AddClient(s);
    Populate(*setup.cluster, populate, /*container=*/s, kKeys, 100, 20);
    for (int c = 0; c < kClientsPerSite; ++c) {
      WalterClient* client = setup.cluster->AddClient(s);
      setup.clients.push_back(client);
      setup.by_site[s].push_back(client);
    }
  }
  return setup;
}

// 80% single-read / 20% single-write over Zipf keys; reads split across both
// containers (all replicated everywhere), writes stay in the client's local
// container so they fast-commit. Arrivals round-robin over `clients`.
WorkloadOpFactory MixFactory(std::vector<WalterClient*> clients, double zipf_s,
                             std::shared_ptr<Rng> rng, uint64_t seed) {
  auto picker = std::make_shared<ZipfKeyPicker>(kKeys, zipf_s, seed);
  auto next = std::make_shared<size_t>(0);
  return [clients = std::move(clients), picker, rng, next](std::function<void(bool)> done) {
    WalterClient* client = clients[(*next)++ % clients.size()];
    ContainerId local = client->site();
    auto tx = std::make_shared<Tx>(client);
    if (rng->NextDouble() < 0.8) {
      ContainerId c = rng->Bernoulli(0.5) ? local : (local + 1) % kSites;
      tx->Read(ObjectId{c, picker->Pick(*rng)},
               [tx, done = std::move(done)](Status s, std::optional<std::string>) {
                 if (!s.ok()) {
                   done(false);
                   return;
                 }
                 tx->Commit([tx, done = std::move(done)](Status s2) { done(s2.ok()); });
               });
    } else {
      tx->Write(ObjectId{local, picker->Pick(*rng)}, std::string(100, 'w'));
      tx->Commit([tx, done = std::move(done)](Status s) { done(s.ok()); });
    }
  };
}

// Nothing parked, admitted or locked may survive a drained cell: a leak here
// is exactly the class of bug the overload paths historically hid (re-parked
// reads counted twice, gap-parked commits unfindable by retransmissions).
void CheckNoLeaks(Cluster& cluster, const char* cell) {
  for (SiteId v = 0; v < static_cast<SiteId>(cluster.num_servers()); ++v) {
    const WalterServer& server = cluster.server(v);
    if (server.lock_count() != 0 || server.watermark_count() != 0 ||
        server.parked_read_count() != 0 || server.gap_commit_waiter_count() != 0 ||
        server.admitted_inflight() != 0) {
      std::fprintf(stderr,
                   "bench_surge: leak in cell %s at server %u after drain: %zu locks, "
                   "%zu watermarks, %zu parked reads, %zu gap waiters, %zu admitted\n",
                   cell, v, server.lock_count(), server.watermark_count(),
                   server.parked_read_count(), server.gap_commit_waiter_count(),
                   server.admitted_inflight());
      std::abort();
    }
  }
}

void FillCounters(CellSetup& setup, SurgeCell* cell) {
  for (SiteId v = 0; v < static_cast<SiteId>(setup.cluster->num_servers()); ++v) {
    const WalterServer::Stats& stats = setup.cluster->server(v).stats();
    cell->admit_rejects += stats.admit_rejects;
    cell->cpu_queue_peak = std::max(cell->cpu_queue_peak, stats.cpu_queue_peak);
  }
  for (WalterClient* client : setup.clients) {
    cell->overload_retries += client->overload_retries_sent();
    cell->overload_sheds += client->overload_sheds();
  }
}

void FillResult(const ScheduledLoadResult& result, SurgeCell* cell) {
  cell->offered_rate = result.OfferedRate();
  cell->goodput = result.Goodput();
  cell->completed = result.completed;
  cell->failed = result.failed;
  if (!result.latency.empty()) {
    LatencyRecorder latency = result.latency;  // Stats() sorts; keep result const
    LatencyRecorder::SummaryStats stats = latency.Stats();
    cell->p50_ms = stats.p50 / 1000.0;
    cell->p99_ms = stats.p99 / 1000.0;
  }
}

SurgeCell RunConstant(double rate, double zipf_s, bool defenses, uint64_t seed, bool quick,
                      const char* name) {
  SimDuration warmup = quick ? Millis(100) : Millis(300);
  SimDuration measure = quick ? Millis(300) : Seconds(1);

  CellSetup setup = MakeSetup(defenses, seed);
  auto rng = std::make_shared<Rng>(seed * 31 + 7);
  ScheduledLoad load(&setup.cluster->sim(), RateSchedule::Constant(rate),
                     MixFactory(setup.clients, zipf_s, rng, seed), seed);
  ScheduledLoadResult result = load.Run(warmup, measure, /*drain=*/Seconds(6));
  setup.cluster->RunFor(Seconds(5));

  SurgeCell cell;
  FillResult(result, &cell);
  FillCounters(setup, &cell);
  CheckNoLeaks(*setup.cluster, name);
  return cell;
}

SurgeCell RunFlashCrowd(double knee_rate, uint64_t seed, bool quick) {
  SimDuration warmup = quick ? Millis(100) : Millis(300);
  SimDuration measure = quick ? Millis(600) : Seconds(1.5);

  CellSetup setup = MakeSetup(/*defenses=*/true, seed);
  auto rng = std::make_shared<Rng>(seed * 31 + 7);
  // Half-knee base stepping 4x (to 2x the knee) shortly into the window.
  RateSchedule schedule = RateSchedule::FlashCrowd(
      knee_rate / 2, /*peak_mult=*/4.0, /*start=*/Millis(100), /*ramp=*/Millis(200),
      /*hold=*/quick ? Millis(200) : Millis(600));
  ScheduledLoad load(&setup.cluster->sim(), schedule, MixFactory(setup.clients, 1.1, rng, seed),
                     seed);
  ScheduledLoadResult result = load.Run(warmup, measure, /*drain=*/Seconds(6));
  setup.cluster->RunFor(Seconds(5));

  SurgeCell cell;
  FillResult(result, &cell);
  FillCounters(setup, &cell);
  CheckNoLeaks(*setup.cluster, "flash_crowd");
  return cell;
}

SurgeCell RunDiurnal(double knee_rate, uint64_t seed, bool quick) {
  SimDuration warmup = quick ? Millis(100) : Millis(300);
  SimDuration measure = quick ? Millis(600) : Seconds(2);

  CellSetup setup = MakeSetup(/*defenses=*/true, seed);
  // One "day" fits the measure window; the sites' peaks are anti-phase, so
  // while site 0 is at 1.8x its base, site 1 idles at 0.2x — the geographic
  // imbalance the preferred-site design leans on.
  std::vector<std::unique_ptr<ScheduledLoad>> drivers;
  for (SiteId s = 0; s < kSites; ++s) {
    auto rng = std::make_shared<Rng>(seed * 31 + 7 + s);
    RateSchedule schedule = RateSchedule::Diurnal(knee_rate / 4, /*amplitude=*/0.8, measure,
                                                  /*phase=*/s * 0.5);
    drivers.push_back(std::make_unique<ScheduledLoad>(
        &setup.cluster->sim(), schedule,
        MixFactory(setup.by_site[s], 1.1, rng, seed + s), seed + 100 * s));
  }
  SimTime start = setup.cluster->sim().Now() + warmup;
  for (auto& driver : drivers) {
    driver->Start(start, start + measure);
  }
  setup.cluster->sim().RunUntil(start + measure + Seconds(6));
  setup.cluster->RunFor(Seconds(5));

  SurgeCell cell;
  ScheduledLoadResult combined;
  combined.seconds = ToSeconds(measure);
  for (SiteId s = 0; s < kSites; ++s) {
    ScheduledLoadResult r = drivers[s]->result();
    cell.site_goodput[s] = r.Goodput();
    combined.offered += r.offered;
    combined.completed += r.completed;
    combined.failed += r.failed;
    // No cross-driver latency merge; report the worse site's percentiles.
    if (!r.latency.empty()) {
      LatencyRecorder::SummaryStats stats = r.latency.Stats();
      cell.p50_ms = std::max(cell.p50_ms, stats.p50 / 1000.0);
      cell.p99_ms = std::max(cell.p99_ms, stats.p99 / 1000.0);
    }
  }
  combined.latency.Clear();  // percentiles set above
  double p50 = cell.p50_ms;
  double p99 = cell.p99_ms;
  FillResult(combined, &cell);
  cell.p50_ms = p50;
  cell.p99_ms = p99;
  FillCounters(setup, &cell);
  CheckNoLeaks(*setup.cluster, "diurnal");
  return cell;
}

// PSI under shedding: like the chaos harness, per-site apply logs from the
// commit observer plus reads recorded only for confirmed transactions.
SurgeCell RunPsiCell(double knee_rate, uint64_t seed, bool quick, bool* psi_ok) {
  SimDuration warmup = quick ? Millis(100) : Millis(300);
  SimDuration measure = quick ? Millis(300) : Seconds(1);

  auto logs = std::make_shared<std::vector<std::vector<TxRecord>>>(kSites);
  CellSetup setup = MakeSetup(
      /*defenses=*/true, seed,
      [logs](SiteId site, const TxRecord& rec) { (*logs)[site].push_back(rec); });

  auto rng = std::make_shared<Rng>(seed * 31 + 7);
  auto picker = std::make_shared<ZipfKeyPicker>(kKeys, 1.3, seed);
  auto next = std::make_shared<size_t>(0);
  auto reads_by_tid =
      std::make_shared<std::unordered_map<TxId, std::vector<RecordedRead>>>();
  WorkloadOpFactory factory = [&setup, picker, rng, next,
                               reads_by_tid](std::function<void(bool)> done) {
    WalterClient* client = setup.clients[(*next)++ % setup.clients.size()];
    ContainerId local = client->site();
    auto tx = std::make_shared<Tx>(client);
    ObjectId read_oid{local, picker->Pick(*rng)};
    tx->Read(read_oid, [tx, client, local, read_oid, picker, rng, reads_by_tid,
                        done = std::move(done)](Status s, std::optional<std::string> v) {
      if (!s.ok()) {
        done(false);
        return;
      }
      std::vector<RecordedRead> reads;
      reads.push_back(RecordedRead{read_oid, false, std::move(v), {}});
      tx->Write(ObjectId{local, picker->Pick(*rng)}, "s" + std::to_string(tx->tid()));
      TxId tid = tx->tid();
      (*reads_by_tid)[tid] = std::move(reads);
      tx->Commit([tx, tid, reads_by_tid, done = std::move(done)](Status s2) {
        if (!s2.ok()) {
          // May or may not have committed server-side; unconfirmed reads are
          // not checkable.
          reads_by_tid->erase(tid);
        }
        done(s2.ok());
      });
    });
  };

  // Above the knee on purpose: the checker must hold while admission and the
  // retry budgets are actively shedding.
  ScheduledLoad load(&setup.cluster->sim(), RateSchedule::Constant(knee_rate * 1.5), factory,
                     seed);
  ScheduledLoadResult result = load.Run(warmup, measure, /*drain=*/Seconds(6));
  setup.cluster->RunFor(Seconds(5));

  PsiChecker checker(kSites);
  for (SiteId s = 0; s < kSites; ++s) {
    for (const TxRecord& rec : (*logs)[s]) {
      checker.OnApply(s, rec.tid);
    }
  }
  for (SiteId s = 0; s < kSites; ++s) {
    for (const TxRecord& rec : (*logs)[s]) {
      if (rec.origin != s) {
        continue;
      }
      RecordedTx recorded;
      recorded.record = rec;
      auto it = reads_by_tid->find(rec.tid);
      if (it != reads_by_tid->end()) {
        recorded.reads = it->second;
      }
      checker.OnCommit(std::move(recorded));
    }
  }
  Status psi = checker.Check();
  *psi_ok = psi.ok();
  if (!psi.ok()) {
    std::fprintf(stderr, "bench_surge: PSI violation under shedding: %s\n",
                 psi.ToString().c_str());
    std::abort();
  }

  SurgeCell cell;
  FillResult(result, &cell);
  FillCounters(setup, &cell);
  CheckNoLeaks(*setup.cluster, "psi_shedding");
  return cell;
}

std::vector<std::string> CellRow(const std::string& label, const SurgeCell& c) {
  return {label,
          TablePrinter::Fmt(c.offered_rate / 1000.0),
          TablePrinter::Fmt(c.goodput / 1000.0),
          TablePrinter::Fmt(c.p50_ms, 2),
          TablePrinter::Fmt(c.p99_ms, 2),
          std::to_string(c.admit_rejects),
          std::to_string(c.overload_sheds),
          std::to_string(c.cpu_queue_peak)};
}

}  // namespace
}  // namespace walter

int main(int argc, char** argv) {
  using walter::SurgeCell;
  using walter::TablePrinter;
  walter::BenchOptions opt = walter::ParseBenchArgs(argc, argv);

  const std::vector<double> rate_mults = {0.25, 0.5, 0.75, 1.0, 1.25, 1.5};
  walter::ParallelRunner runner(opt.jobs);

  // Pass 1: knee sweep (defenses on).
  std::vector<SurgeCell> sweep = runner.Map<SurgeCell>(rate_mults.size(), [&](size_t i) {
    return walter::RunConstant(walter::kBaseRate * rate_mults[i], 1.1, /*defenses=*/true,
                               7000 + i, opt.quick, "sweep");
  });
  size_t knee = 0;
  for (size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].goodput > sweep[knee].goodput) {
      knee = i;
    }
  }
  double knee_rate = walter::kBaseRate * rate_mults[knee];
  double peak_goodput = sweep[knee].goodput;

  // Pass 2: the degradation/skew/surge cells, all calibrated to the knee.
  const std::vector<double> zipf_sweep = {0.9, 1.1, 1.3};
  bool psi_ok = false;
  std::vector<SurgeCell> cells = runner.Map<SurgeCell>(7, [&](size_t i) {
    switch (i) {
      case 0:
        return walter::RunConstant(2 * knee_rate, 1.1, /*defenses=*/true, 7100, opt.quick,
                                   "overload_on");
      case 1:
        return walter::RunConstant(2 * knee_rate, 1.1, /*defenses=*/false, 7100, opt.quick,
                                   "overload_off");
      case 2:
      case 3:
      case 4:
        return walter::RunConstant(knee_rate, zipf_sweep[i - 2], /*defenses=*/true,
                                   7200 + (i - 2), opt.quick, "hot_key");
      case 5:
        return walter::RunFlashCrowd(knee_rate, 7300, opt.quick);
      default:
        return walter::RunDiurnal(knee_rate, 7400, opt.quick);
    }
  });
  const SurgeCell& on = cells[0];
  const SurgeCell& off = cells[1];
  SurgeCell psi_cell = walter::RunPsiCell(knee_rate, 7500, opt.quick, &psi_ok);

  std::printf("=== Overload and shedding: %zu sites, admission control + retry budgets ===\n\n",
              walter::kSites);

  std::vector<std::string> headers = {"cell",        "offered Ktps", "goodput Ktps",
                                      "p50 (ms)",    "p99 (ms)",     "admit rejects",
                                      "client sheds", "queue peak"};
  std::printf("-- Knee sweep (defenses on, Zipf s=1.1) --\n");
  {
    TablePrinter table(headers);
    for (size_t i = 0; i < sweep.size(); ++i) {
      table.AddRow(walter::CellRow(TablePrinter::Fmt(rate_mults[i], 2) + "x base", sweep[i]));
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("-- Surge cells (calibrated to knee = %.1f Ktps offered) --\n",
              knee_rate / 1000.0);
  {
    TablePrinter table(headers);
    table.AddRow(walter::CellRow("2x knee, defenses on", on));
    table.AddRow(walter::CellRow("2x knee, defenses off", off));
    table.AddRow(walter::CellRow("knee, zipf 0.9", cells[2]));
    table.AddRow(walter::CellRow("knee, zipf 1.1", cells[3]));
    table.AddRow(walter::CellRow("knee, zipf 1.3", cells[4]));
    table.AddRow(walter::CellRow("flash crowd 4x", cells[5]));
    table.AddRow(walter::CellRow("diurnal anti-phase", cells[6]));
    table.AddRow(walter::CellRow("1.5x knee, PSI-checked", psi_cell));
    std::printf("%s\n", table.Render().c_str());
  }

  double retained = peak_goodput > 0 ? on.goodput / peak_goodput : 0;
  double collapse = on.goodput > 0 ? off.goodput / on.goodput : 0;
  // A fully collapsed cell has zero in-window completions, hence no latency
  // samples — report that instead of a meaningless "p99 0ms".
  std::string off_p99 = off.completed > 0
                            ? "p99 " + TablePrinter::Fmt(off.p99_ms, 0) + "ms"
                            : std::string("zero in-window completions");
  std::printf(
      "Headline: at 2x the knee the defenses retain %.0f%% of peak goodput\n"
      "(acceptance: >= 50%%, p99 bounded) by rejecting at admission (%llu) and\n"
      "shedding at the client retry budget (%llu); with defenses off the same\n"
      "load keeps %.2fx of the defended goodput with %s (vs p99 %.0fms).\n"
      "PSI held under shedding: %s. Diurnal split: site0 %.1f / site1 %.1f Ktps.\n",
      retained * 100.0, static_cast<unsigned long long>(on.admit_rejects),
      static_cast<unsigned long long>(on.overload_sheds), collapse, off_p99.c_str(), on.p99_ms,
      psi_ok ? "yes" : "NO", cells[6].site_goodput[0] / 1000.0,
      cells[6].site_goodput[1] / 1000.0);

  walter::BenchJson json;
  json.Set("bench", std::string("surge"));
  json.Set("quick", opt.quick ? 1.0 : 0.0);
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::string key = "sweep_x" + std::to_string(static_cast<int>(rate_mults[i] * 100));
    json.Set(key + "_goodput", sweep[i].goodput);
    json.Set(key + "_p99_ms", sweep[i].p99_ms);
  }
  json.Set("knee_rate", knee_rate);
  json.Set("peak_goodput", peak_goodput);
  json.Set("overload_on_goodput", on.goodput);
  json.Set("overload_on_p99_ms", on.p99_ms);
  json.Set("overload_on_admit_rejects", static_cast<double>(on.admit_rejects));
  json.Set("overload_on_sheds", static_cast<double>(on.overload_sheds));
  json.Set("overload_on_retained_frac", retained);
  json.Set("overload_off_goodput", off.goodput);
  json.Set("overload_off_p99_ms", off.p99_ms);
  json.Set("overload_off_queue_peak", static_cast<double>(off.cpu_queue_peak));
  json.Set("collapse_ratio", collapse);
  const char* zkeys[3] = {"zipf_s09", "zipf_s11", "zipf_s13"};
  for (size_t i = 0; i < 3; ++i) {
    json.Set(std::string(zkeys[i]) + "_goodput", cells[2 + i].goodput);
    json.Set(std::string(zkeys[i]) + "_p99_ms", cells[2 + i].p99_ms);
    json.Set(std::string(zkeys[i]) + "_failed", static_cast<double>(cells[2 + i].failed));
  }
  json.Set("flash_goodput", cells[5].goodput);
  json.Set("flash_p99_ms", cells[5].p99_ms);
  json.Set("flash_admit_rejects", static_cast<double>(cells[5].admit_rejects));
  json.Set("diurnal_site0_goodput", cells[6].site_goodput[0]);
  json.Set("diurnal_site1_goodput", cells[6].site_goodput[1]);
  json.Set("psi_goodput", psi_cell.goodput);
  json.Set("psi_sheds", static_cast<double>(psi_cell.overload_sheds));
  json.Set("psi_ok", psi_ok ? 1.0 : 0.0);
  return json.WriteIfRequested(opt.json_path) ? 0 : 1;
}
