// Figure 16 — Base read and write transaction throughput: Walter vs a
// Berkeley-DB-like primary-copy store.
//
// Setup per Section 8.2: primary on the private cluster (write caching on),
// one asynchronous replica, 50,000 keys of 100 bytes, single-op transactions
// (one RPC each), updates only at one site.
//
// Paper's result:  Walter read 72 Ktps / write 33.5 Ktps;
//                  Berkeley DB read 80 Ktps / write 32 Ktps.
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "src/baseline/bdb_store.h"

namespace walter {
namespace {

constexpr uint64_t kKeys = 50'000;
constexpr int kClientsPerRun = 96;
constexpr SimDuration kWarmup = Millis(200);
constexpr SimDuration kMeasure = Seconds(2);

struct Numbers {
  double read_ktps = 0;
  double write_ktps = 0;
};

Numbers RunWalter() {
  ClusterOptions options;
  options.num_sites = 2;  // primary + one asynchronous replica
  options.server.perf = PerfModel::PrivateCluster();
  options.server.disk = DiskConfig::WriteCacheOn();
  Cluster cluster(options);
  WalterClient* setup = cluster.AddClient(0);
  Populate(cluster, setup, /*container=*/0, kKeys, 100);

  Numbers n;
  {
    ClosedLoopLoad load(&cluster.sim());
    auto rng = std::make_shared<Rng>(1);
    for (int c = 0; c < kClientsPerRun; ++c) {
      load.AddClient(ReadTxFactory(cluster.AddClient(0), 0, kKeys, 1, rng));
    }
    n.read_ktps = load.Run(kWarmup, kMeasure).ThroughputKops();
  }
  {
    ClosedLoopLoad load(&cluster.sim());
    auto rng = std::make_shared<Rng>(2);
    for (int c = 0; c < kClientsPerRun; ++c) {
      load.AddClient(WriteTxFactory(cluster.AddClient(0), 0, kKeys, 1, 100, rng));
    }
    n.write_ktps = load.Run(kWarmup, kMeasure).ThroughputKops();
  }
  return n;
}

Numbers RunBdb() {
  Simulator sim(1);
  Network net(&sim, Topology::Ec2Subset(2));
  BdbServer::Options primary;
  primary.site = 0;
  primary.is_primary = true;
  primary.mirrors = {1};
  primary.disk = DiskConfig::WriteCacheOn();
  BdbServer primary_server(&sim, &net, primary);
  BdbServer::Options mirror;
  mirror.site = 1;
  mirror.is_primary = false;
  BdbServer mirror_server(&sim, &net, mirror);

  std::vector<std::unique_ptr<BdbClient>> clients;
  auto add_client = [&]() {
    clients.push_back(std::make_unique<BdbClient>(
        &net, 0, kClientPortBase + static_cast<uint32_t>(clients.size()), 0));
    return clients.back().get();
  };

  // Populate.
  {
    uint64_t next = 0;
    BdbClient* c = add_client();
    while (next < kKeys) {
      size_t in_flight = 0;
      for (int b = 0; b < 16 && next < kKeys; ++b, ++next) {
        ++in_flight;
        c->Put("key" + std::to_string(next), std::string(100, 'x'),
               [&in_flight](Status) { --in_flight; });
      }
      while (in_flight > 0 && sim.Step()) {
      }
    }
  }

  Numbers n;
  auto rng = std::make_shared<Rng>(3);
  {
    ClosedLoopLoad load(&sim);
    for (int c = 0; c < kClientsPerRun; ++c) {
      BdbClient* client = add_client();
      load.AddClient([client, rng](std::function<void(bool)> done) {
        client->Get("key" + std::to_string(rng->Uniform(kKeys)),
                    [done = std::move(done)](Status s, std::optional<std::string>) {
                      done(s.ok());
                    });
      });
    }
    n.read_ktps = load.Run(kWarmup, kMeasure).ThroughputKops();
  }
  {
    ClosedLoopLoad load(&sim);
    for (int c = 0; c < kClientsPerRun; ++c) {
      BdbClient* client = add_client();
      load.AddClient([client, rng](std::function<void(bool)> done) {
        client->Put("key" + std::to_string(rng->Uniform(kKeys)), std::string(100, 'w'),
                    [done = std::move(done)](Status s) { done(s.ok()); });
      });
    }
    n.write_ktps = load.Run(kWarmup, kMeasure).ThroughputKops();
  }
  return n;
}

}  // namespace
}  // namespace walter

int main() {
  std::printf("=== Figure 16: base read/write transaction throughput ===\n");
  std::printf("(single-op 100-byte transactions, primary + 1 async replica, 50k keys)\n\n");
  walter::Numbers w = walter::RunWalter();
  walter::Numbers b = walter::RunBdb();

  walter::TablePrinter table(
      {"Name", "Read Tx (Ktps)", "paper", "Write Tx (Ktps)", "paper"});
  table.AddRow({"Walter", walter::TablePrinter::Fmt(w.read_ktps), "72",
                walter::TablePrinter::Fmt(w.write_ktps), "33.5"});
  table.AddRow({"Berkeley DB (sim)", walter::TablePrinter::Fmt(b.read_ktps), "80",
                walter::TablePrinter::Fmt(b.write_ktps), "32"});
  std::printf("%s\n", table.Render().c_str());
  std::printf("Expected shape: Walter read slightly below BDB; writes comparable.\n");
  return 0;
}
