// Ablation — Propagation batching.
//
// Walter propagates committed transactions in periodic batches (Section 6);
// a new batch departs to a destination when the previous one is acknowledged,
// with a configurable floor between batches. This sweep varies the floor and
// measures disaster-safe durability latency against the number of propagation
// messages — the latency/overhead trade the batching design point sits on.
#include <cstdio>
#include <memory>

#include "bench/harness.h"

namespace walter {
namespace {

constexpr uint64_t kKeys = 5'000;

struct Point {
  double p50_ms;
  double p90_ms;
  uint64_t batches;
  uint64_t messages;
};

Point RunInterval(SimDuration interval, uint64_t seed) {
  ClusterOptions options;
  options.num_sites = 2;  // VA-CA: RTT 82 ms
  options.seed = seed;
  options.server.perf = PerfModel::Ec2();
  options.server.disk = DiskConfig::Ec2();
  options.server.min_batch_interval = interval;
  Cluster cluster(options);
  Populate(cluster, cluster.AddClient(0), 0, kKeys, 100, 20);
  uint64_t msgs_before = cluster.net().messages_sent();

  auto rng = std::make_shared<Rng>(seed);
  auto factory = [rng](WalterClient* client) {
    return [client, rng](std::function<void(bool)> done) {
      auto tx = std::make_shared<Tx>(client);
      tx->Write(ObjectId{0, rng->Uniform(kKeys)}, std::string(100, 'b'));
      Tx::CommitOptions opts;
      opts.on_durable = [tx, done]() { done(true); };
      tx->Commit([tx](Status) {}, opts);
    };
  };
  OpenLoopLoad load(&cluster.sim(), 500, factory(cluster.AddClient(0)));
  LoadResult result = load.Run(Seconds(1), Seconds(15));

  Point p;
  p.p50_ms = result.latency.Percentile(50) / 1000.0;
  p.p90_ms = result.latency.Percentile(90) / 1000.0;
  p.batches = cluster.server(0).stats().batches_sent;
  p.messages = cluster.net().messages_sent() - msgs_before;
  return p;
}

}  // namespace
}  // namespace walter

int main() {
  using walter::TablePrinter;
  std::printf("=== Ablation: propagation batch interval (2 sites, VA-CA, 500 writes/s) ===\n\n");
  TablePrinter table({"batch floor (ms)", "ds-durable p50 (ms)", "p90 (ms)", "batches",
                      "total messages"});
  uint64_t seed = 9100;
  for (double ms : {0.0, 2.0, 10.0, 50.0, 200.0, 500.0}) {
    walter::Point p = walter::RunInterval(walter::Millis(ms), seed++);
    table.AddRow({TablePrinter::Fmt(ms, 0), TablePrinter::Fmt(p.p50_ms),
                  TablePrinter::Fmt(p.p90_ms), std::to_string(p.batches),
                  std::to_string(p.messages)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Expected shape: small floors leave latency near [RTT, 2*RTT] (the ack-paced\n"
              "cycle dominates); large floors stretch durability latency while cutting the\n"
              "number of batches/messages.\n");
  return 0;
}
