#!/usr/bin/env python3
"""Documentation drift gate.

Fails (exit 1) when the docs disagree with the build:
  1. A relative markdown link points at a file that does not exist.
  2. A markdown link's #anchor names a heading that does not exist
     (GitHub-style anchor derivation).
  3. A `bench_*` binary named anywhere in the docs is not declared in
     bench/CMakeLists.txt.
  4. A ctest label used with `-L <label>` in the docs is not declared via
     LABELS in any CMakeLists.txt.
  5. Trace-kind drift, both directions: every kind emitted by
     TraceKindName() (src/obs/trace.cc) must be documented in
     docs/TRACING.md's vocabulary section, and every snake_case token that
     section backticks must be either a real trace kind or an identifier
     that appears somewhere in the source tree (config knobs etc.) — a
     renamed or deleted kind leaves a stale name that matches nothing.

Usage: check_docs.py [repo_root]   (default: the script's parent directory)
"""

import re
import sys
from pathlib import Path


# Inputs provided to this repo (paper/related-work metadata), not docs we own,
# plus the append-only changelog, whose old entries legitimately name binaries
# and labels that no longer exist.
EXCLUDED = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md", "CHANGES.md"}


def markdown_files(root: Path):
    files = sorted(root.glob("*.md"))
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.name not in EXCLUDED]


def github_anchor(heading: str) -> str:
    """GitHub's heading -> fragment derivation (ASCII subset)."""
    text = heading.strip().lower()
    text = text.replace("`", "")
    text = re.sub(r"[^a-z0-9_\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md: Path) -> set:
    anchors = set()
    in_fence = False
    for line in md.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and re.match(r"#{1,6}\s", line):
            anchors.add(github_anchor(line.lstrip("#")))
    return anchors


LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links(files, errors):
    anchor_cache = {}
    for md in files:
        for target in LINK.findall(md.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            dest = md if not path_part else (md.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{md}: broken link -> {target}")
                continue
            if fragment and dest.suffix == ".md":
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if fragment not in anchor_cache[dest]:
                    errors.append(f"{md}: dead anchor -> {target}")


def check_bench_binaries(root: Path, files, errors):
    cmake = (root / "bench" / "CMakeLists.txt").read_text()
    declared = set(re.findall(r"walter_bench\((bench_[a-z0-9_]+)", cmake))
    declared |= set(re.findall(r"add_library\((bench_[a-z0-9_]+)", cmake))
    for md in files:
        for name in set(re.findall(r"\bbench_[a-z0-9_]+\b", md.read_text(encoding="utf-8"))):
            if name not in declared:
                errors.append(f"{md}: names unknown bench binary '{name}'")


def check_ctest_labels(root: Path, files, errors):
    declared = set()
    for cmake in root.rglob("CMakeLists.txt"):
        if "build" in cmake.parts:
            continue
        for group in re.findall(r'LABELS\s+"([^"]+)"', cmake.read_text(encoding="utf-8")):
            declared.update(group.split(";"))
    for md in files:
        for label in set(re.findall(r"ctest[^\n]*?-L\s+([a-z0-9_]+)", md.read_text(encoding="utf-8"))):
            if label not in declared:
                errors.append(f"{md}: names unknown ctest label '{label}'")


def check_trace_kinds(root: Path, errors):
    trace_cc = root / "src" / "obs" / "trace.cc"
    tracing_md = root / "docs" / "TRACING.md"
    if not trace_cc.exists() or not tracing_md.exists():
        errors.append("trace-kind check: src/obs/trace.cc or docs/TRACING.md missing")
        return
    actual = set(
        re.findall(r'case TraceKind::k\w+:\s*return "([a-z][a-z0-9_]*)"',
                   trace_cc.read_text(encoding="utf-8"))
    )
    text = tracing_md.read_text(encoding="utf-8")
    # The vocabulary runs from the "`TraceKind` vocabulary" line to the next
    # top-level section heading.
    m = re.search(r"`TraceKind` vocabulary.*?(?=\n## )", text, re.S)
    section = m.group(0) if m else ""
    if not section:
        errors.append(f"{tracing_md}: no '`TraceKind` vocabulary' section found")
        return
    documented = set(re.findall(r"`([a-z][a-z0-9_]*)`", section))
    for name in sorted(actual - documented):
        errors.append(
            f"{tracing_md}: trace kind '{name}' (TraceKindName in src/obs/trace.cc) "
            "is missing from the vocabulary section"
        )
    # Reverse direction: a documented snake_case token must be a kind or a
    # real identifier somewhere in the tree (src/, bench/, tests/).
    stale = sorted(documented - actual)
    if stale:
        corpus = []
        for sub in ("src", "bench", "tests"):
            for p in (root / sub).rglob("*"):
                if p.suffix in (".h", ".cc", ".txt"):
                    corpus.append(p.read_text(encoding="utf-8", errors="ignore"))
        blob = "\n".join(corpus)
        for name in stale:
            if name not in blob:
                errors.append(
                    f"{tracing_md}: vocabulary names '{name}', which is neither a "
                    "trace kind nor an identifier anywhere in src/, bench/ or tests/"
                )


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    files = markdown_files(root)
    if not files:
        print(f"check_docs: no markdown files under {root}", file=sys.stderr)
        return 1
    errors = []
    check_links(files, errors)
    check_bench_binaries(root, files, errors)
    check_ctest_labels(root, files, errors)
    check_trace_kinds(root, errors)
    if errors:
        print(f"check_docs: {len(errors)} problem(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
