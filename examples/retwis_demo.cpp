// ReTwis demo: the same Twitter-clone application code running on two storage
// backends — the Redis-like store (single write site) and Walter (writes at
// every site, csets for timelines). Mirrors the Section 7/8.7 port.
//
//   build/examples/retwis_demo
#include <cstdio>
#include <memory>

#include "src/apps/retwis/retwis.h"
#include "src/core/cluster.h"
#include "src/obs/watchdog.h"

using namespace walter;

namespace {

void Drive(Simulator& sim, const bool& flag) {
  while (!flag && sim.Step()) {
  }
}

size_t RunScenario(Simulator& sim, RetwisBackend& app, const char* label) {
  std::printf("--- %s ---\n", label);
  bool done = false;
  app.Follow(/*follower=*/7, /*followee=*/1, [&](Status s) {
    std::printf("  user 7 follows user 1: %s\n", s.ToString().c_str());
    done = true;
  });
  Drive(sim, done);

  done = false;
  app.Post(1, "shipping the paper artifact today", [&](Status s) {
    std::printf("  user 1 posts: %s\n", s.ToString().c_str());
    done = true;
  });
  Drive(sim, done);

  size_t entries = 0;
  done = false;
  app.Status(7, [&](Status, std::vector<std::string> timeline) {
    entries = timeline.size();
    std::printf("  user 7's timeline (%zu): ", timeline.size());
    for (const auto& t : timeline) {
      std::printf("\"%s\" ", t.c_str());
    }
    std::printf("\n");
    done = true;
  });
  Drive(sim, done);
  return entries;
}

}  // namespace

int main() {
  std::printf("ReTwis on two backends\n\n");

  // Backend 1: Redis-like store (master at one site; only it takes writes).
  size_t redis_entries = 0;
  {
    Simulator sim(1);
    Network net(&sim, Topology::Ec2Subset(1));
    RedisServer::Options options;
    options.site = 0;
    RedisServer server(&sim, &net, options);
    RedisClient client(&net, 0, kClientPortBase, 0);
    RetwisOnRedis app(&client);
    redis_entries = RunScenario(sim, app, "ReTwis on Redis (1 site)");
  }

  // Backend 2: Walter across two sites — and the part Redis cannot do:
  // concurrent posting from BOTH sites into the same timeline.
  size_t walter_entries = 0;
  size_t merged_entries = 0;
  bool watchdog_fired = false;
  {
    ClusterOptions options;
    options.num_sites = 2;
    Cluster cluster(options);
    // Any stalled Walter transaction fails with a stage/site verdict instead
    // of spinning in Drive() forever.
    LivenessWatchdog watchdog(&cluster.sim());
    RetwisOnWalter app_va(cluster.AddClient(0));
    RetwisOnWalter app_ca(cluster.AddClient(1));
    walter_entries = RunScenario(cluster.sim(), app_va, "ReTwis on Walter (site VA)");

    std::printf("--- multi-site posting (csets make timelines conflict-free) ---\n");
    bool f1 = false;
    bool f2 = false;
    app_va.Follow(7, 2, [&](Status) { f1 = true; });
    app_ca.Follow(7, 3, [&](Status) { f2 = true; });
    while (!(f1 && f2) && cluster.sim().Step()) {
    }
    cluster.RunFor(Seconds(2));

    int posted = 0;
    app_va.Post(2, "posted at Virginia", [&](Status) { ++posted; });
    app_ca.Post(3, "posted at California", [&](Status) { ++posted; });
    while (posted < 2 && cluster.sim().Step()) {
    }
    cluster.RunFor(Seconds(2));

    bool done = false;
    app_va.Status(7, [&](Status, std::vector<std::string> timeline) {
      merged_entries = timeline.size();
      std::printf("  user 7's merged timeline (%zu entries):\n", timeline.size());
      for (const auto& t : timeline) {
        std::printf("    \"%s\"\n", t.c_str());
      }
      done = true;
    });
    Drive(cluster.sim(), done);
    watchdog_fired = watchdog.fired();
  }

  bool ok = redis_entries == 1 && walter_entries == 1 && merged_entries == 3 &&
            !watchdog_fired;
  if (!ok) {
    std::printf("FAILED: redis_entries=%zu walter_entries=%zu merged_entries=%zu "
                "watchdog_fired=%d\n",
                redis_entries, walter_entries, merged_entries, watchdog_fired ? 1 : 0);
  }
  return ok ? 0 : 1;
}
