// Social network walkthrough: the WaltSocial application of Section 7 on a
// 4-site deployment — users homed at different continents befriend each other,
// post on walls, and create photo albums, all with fast commits.
//
//   build/examples/social_network
#include <cstdio>
#include <memory>

#include "src/apps/waltsocial/waltsocial.h"
#include "src/core/cluster.h"
#include "src/obs/watchdog.h"

using namespace walter;

namespace {

// Drives the simulator until `flag` flips.
void Wait(Cluster& cluster, const bool& flag) {
  while (!flag && cluster.sim().Step()) {
  }
}

}  // namespace

int main() {
  std::printf("WaltSocial on 4 sites (VA, CA, IE, SG)\n\n");

  ClusterOptions options;
  options.num_sites = 4;
  Cluster cluster(options);
  // A stalled transaction fails with a stage/site verdict instead of spinning
  // in Wait() forever.
  LivenessWatchdog watchdog(&cluster.sim());

  // Alice is homed in Virginia (user 0 -> site 0), Bob in Ireland (user 2 ->
  // site 2): each one's client talks to her local site.
  WaltSocial alice_app(cluster.AddClient(0));
  WaltSocial bob_app(cluster.AddClient(2));
  const UserId alice = 0;
  const UserId bob = 2;

  bool done = false;
  alice_app.CreateUser(alice, "Alice <alice@va.example>", [&](Status s) {
    std::printf("create Alice: %s\n", s.ToString().c_str());
    done = true;
  });
  Wait(cluster, done);
  done = false;
  bob_app.CreateUser(bob, "Bob <bob@ie.example>", [&](Status s) {
    std::printf("create Bob:   %s\n", s.ToString().c_str());
    done = true;
  });
  Wait(cluster, done);
  cluster.RunFor(Seconds(2));  // profiles replicate everywhere

  // Befriending (Figure 15): one transaction updates BOTH friend lists —
  // there is never a one-sided friendship, even though Alice and Bob live on
  // different continents. Friend lists are csets, so this fast-commits at VA.
  done = false;
  alice_app.Befriend(alice, bob, [&](Status s) {
    std::printf("befriend(Alice, Bob): %s at t=%.0f ms  (fast commit at VA)\n",
                s.ToString().c_str(), ToMillis(cluster.sim().Now()));
    done = true;
  });
  Wait(cluster, done);

  // Alice posts a status; Bob writes on Alice's wall from Ireland.
  done = false;
  alice_app.StatusUpdate(alice, "First to flag the new promotion!", [&](Status s) {
    std::printf("Alice status-update: %s\n", s.ToString().c_str());
    done = true;
  });
  Wait(cluster, done);
  done = false;
  bob_app.PostMessage(bob, alice, "Saw it two minutes ago ;-)", [&](Status s) {
    std::printf("Bob post-message:    %s  (fast commit at IE: csets + own objects)\n",
                s.ToString().c_str());
    done = true;
  });
  Wait(cluster, done);

  // PSI's long fork, visible in an application: until propagation completes,
  // Alice's site does not see Bob's post.
  done = false;
  alice_app.ReadInfo(alice, [&](Status, WaltSocial::UserInfo info) {
    std::printf("Alice's wall at VA, before propagation: %zu message(s)\n",
                info.messages.PresentElements().size());
    done = true;
  });
  Wait(cluster, done);

  cluster.RunFor(Seconds(2));
  size_t messages = 0;
  size_t friends = 0;
  done = false;
  alice_app.ReadInfo(alice, [&](Status, WaltSocial::UserInfo info) {
    messages = info.messages.PresentElements().size();
    friends = info.friends.PresentElements().size();
    std::printf("Alice's wall at VA, after propagation:  %zu message(s), %zu friend(s)\n",
                messages, friends);
    done = true;
  });
  Wait(cluster, done);

  // Album creation (the Section 2 motivating example): album object, album
  // list and wall announcement commit atomically.
  ObjectId album{};
  done = false;
  alice_app.AddAlbum(alice, "Honeymoon", [&](Status s, ObjectId a) {
    album = a;
    std::printf("Alice add-album: %s (announcement + album in one transaction)\n",
                s.ToString().c_str());
    done = true;
  });
  Wait(cluster, done);
  done = false;
  alice_app.AddPhoto(alice, album, "<jpeg bytes>", [&](Status s, ObjectId) {
    std::printf("Alice add-photo: %s\n", s.ToString().c_str());
    done = true;
  });
  Wait(cluster, done);
  size_t album_photos = 0;
  done = false;
  alice_app.ListAlbumPhotos(alice, album, [&](Status, std::vector<ObjectId> photos) {
    album_photos = photos.size();
    std::printf("album now holds %zu photo(s)\n", album_photos);
    done = true;
  });
  Wait(cluster, done);

  std::printf("\nServer stats (site VA): %llu fast commits, %llu slow commits\n",
              static_cast<unsigned long long>(cluster.server(0).stats().fast_commits),
              static_cast<unsigned long long>(cluster.server(0).stats().slow_commits));
  std::printf("Server stats (site IE): %llu fast commits, %llu slow commits\n",
              static_cast<unsigned long long>(cluster.server(2).stats().fast_commits),
              static_cast<unsigned long long>(cluster.server(2).stats().slow_commits));
  std::printf("No slow commits anywhere: preferred sites + csets at work.\n");

  uint64_t slow = cluster.server(0).stats().slow_commits + cluster.server(2).stats().slow_commits;
  // After propagation Alice's wall holds her own status update plus Bob's post.
  bool ok = messages == 2 && friends == 1 && album_photos == 1 && slow == 0 &&
            !watchdog.fired();
  if (!ok) {
    std::printf("FAILED: messages=%zu friends=%zu album_photos=%zu slow_commits=%llu "
                "watchdog_fired=%d\n",
                messages, friends, album_photos, static_cast<unsigned long long>(slow),
                watchdog.fired() ? 1 : 0);
  }
  return ok ? 0 : 1;
}
