// Quickstart: bring up a 2-site Walter deployment, run a transaction, watch it
// replicate.
//
//   build/examples/quickstart
//
// Everything runs on the deterministic simulator: `Cluster` assembles the
// sites, network (with the paper's EC2 latencies) and servers; `WalterClient`
// + `Tx` are the Figure 14 client API. The console output walks through each
// step.
#include <cstdio>
#include <memory>

#include "src/core/cluster.h"
#include "src/obs/watchdog.h"

using namespace walter;

int main() {
  std::printf("Walter quickstart: 2 sites (VA, CA), RTT 82 ms\n\n");

  // 1. Bring up two sites. The watchdog turns any stalled transaction into a
  //    loud failure (stage + site + trace slice) instead of an infinite loop.
  ClusterOptions options;
  options.num_sites = 2;
  Cluster cluster(options);
  LivenessWatchdog watchdog(&cluster.sim());
  WalterClient* va_client = cluster.AddClient(0);
  WalterClient* ca_client = cluster.AddClient(1);

  // Container 0 has preferred site VA (default layout: container % num_sites).
  const ObjectId greeting{0, 1};
  const ObjectId visits{0, 2};  // used as a cset below

  // 2. A read-write transaction at VA: write a value and add to a cset.
  //    It fast-commits: every written object is preferred here, and cset
  //    operations never conflict.
  {
    Tx tx(va_client);
    tx.Write(greeting, "hello from Virginia");
    tx.SetAdd(visits, ObjectId{99, 1});  // one "visit" by user 1
    bool committed = false;
    bool durable = false;
    bool visible = false;
    Tx::CommitOptions commit_options;
    commit_options.on_durable = [&] { durable = true; };
    commit_options.on_visible = [&] { visible = true; };
    tx.Commit(
        [&](Status s) {
          std::printf("[VA] commit: %s at t=%.1f ms (local, no cross-site wait)\n",
                      s.ToString().c_str(), ToMillis(cluster.sim().Now()));
          committed = true;
        },
        commit_options);
    while (!committed && cluster.sim().Step()) {
    }
    // 3. Asynchronous replication: run virtual time forward until the
    //    transaction is disaster-safe durable, then globally visible
    //    (committed at every site — Section 4.2's two callbacks).
    while (!durable && cluster.sim().Step()) {
    }
    std::printf("[VA] disaster-safe durable at t=%.1f ms (~RTT..2xRTT later)\n",
                ToMillis(cluster.sim().Now()));
    while (!visible && cluster.sim().Step()) {
    }
    std::printf("[VA] globally visible at t=%.1f ms (committed at CA too)\n",
                ToMillis(cluster.sim().Now()));
  }

  // 4. Read from California: the snapshot there now includes the VA commit.
  bool ca_saw_greeting = false;
  int64_t ca_visit_count = 0;
  {
    Tx tx(ca_client);
    bool done = false;
    tx.Read(greeting, [&](Status s, std::optional<std::string> value) {
      std::printf("[CA] read: %s -> \"%s\"\n", s.ToString().c_str(),
                  value.value_or("<nil>").c_str());
      ca_saw_greeting = s.ok() && value == "hello from Virginia";
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
    bool count_done = false;
    tx.SetReadId(visits, ObjectId{99, 1}, [&](Status, int64_t count) {
      std::printf("[CA] cset count for user 1: %lld\n", static_cast<long long>(count));
      ca_visit_count = count;
      count_done = true;
    });
    while (!count_done && cluster.sim().Step()) {
    }
  }

  // 5. Concurrent cset updates from both sites: no conflict, both survive.
  size_t visitors = 0;
  {
    int commits = 0;
    Tx a(va_client);
    a.SetAdd(visits, ObjectId{99, 2});
    a.Commit([&](Status) { ++commits; });
    Tx b(ca_client);
    b.SetAdd(visits, ObjectId{99, 3});
    b.Commit([&](Status) { ++commits; });
    while (commits < 2 && cluster.sim().Step()) {
    }
    cluster.RunFor(Seconds(1));  // replicate both ways

    Tx check(va_client);
    bool done = false;
    check.SetRead(visits, [&](Status, CountingSet set) {
      visitors = set.PresentElements().size();
      std::printf("[VA] after concurrent adds from both sites, cset has %zu visitors\n",
                  visitors);
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
  }

  std::printf("\nDone. Total virtual time: %.1f ms; simulator events: %zu\n",
              ToMillis(cluster.sim().Now()), cluster.sim().events_processed());

  bool ok = ca_saw_greeting && ca_visit_count == 1 && visitors == 3 && !watchdog.fired();
  if (!ok) {
    std::printf("FAILED: ca_saw_greeting=%d ca_visit_count=%lld visitors=%zu "
                "watchdog_fired=%d\n",
                ca_saw_greeting ? 1 : 0, static_cast<long long>(ca_visit_count), visitors,
                watchdog.fired() ? 1 : 0);
  }
  return ok ? 0 : 1;
}
