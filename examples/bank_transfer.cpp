// Read-modify-write and conditional writes under PSI (Section 3.4): an
// account-transfer service built on Walter. PSI's no-write-write-conflict rule
// means a concurrent transfer touching the same account aborts instead of
// silently losing money — the application retries.
//
//   build/examples/bank_transfer
#include <cstdio>
#include <memory>
#include <string>

#include "src/core/cluster.h"
#include "src/obs/watchdog.h"

using namespace walter;

namespace {

int64_t Balance(const std::optional<std::string>& raw) {
  return raw ? std::strtoll(raw->c_str(), nullptr, 10) : 0;
}

// Transfers `amount` from one account to another with a read-modify-write
// transaction; retries on conflict abort.
void Transfer(Cluster& cluster, WalterClient* client, ObjectId from, ObjectId to,
              int64_t amount, std::function<void(bool moved)> done, int retries = 5) {
  auto tx = std::make_shared<Tx>(client);
  tx->Read(from, [=, &cluster](Status s, std::optional<std::string> from_raw) {
    if (!s.ok()) {
      done(false);
      return;
    }
    int64_t from_balance = Balance(from_raw);
    if (from_balance < amount) {
      // Conditional write: insufficient funds, abort the transaction.
      tx->Abort([done] { done(false); });
      return;
    }
    tx->Read(to, [=, &cluster](Status s, std::optional<std::string> to_raw) {
      if (!s.ok()) {
        done(false);
        return;
      }
      tx->Write(from, std::to_string(from_balance - amount));
      tx->Write(to, std::to_string(Balance(to_raw) + amount));
      tx->Commit([=, &cluster](Status s) {
        if (s.ok()) {
          done(true);
        } else if (retries > 0) {
          // Write-write conflict: another transfer raced us. Retry afresh.
          Transfer(cluster, client, from, to, amount, done, retries - 1);
        } else {
          done(false);
        }
      });
    });
  });
}

}  // namespace

int main() {
  std::printf("Bank transfers with read-modify-write transactions\n\n");
  ClusterOptions options;
  options.num_sites = 2;
  Cluster cluster(options);
  // If any transaction below stalls, fail loudly with a stage/site verdict and
  // a trace slice instead of spinning in the wait loops forever.
  LivenessWatchdog watchdog(&cluster.sim());
  WalterClient* client = cluster.AddClient(0);

  const ObjectId alice{0, 1};
  const ObjectId bob{0, 2};
  const ObjectId carol{0, 3};

  // Seed balances.
  {
    Tx tx(client);
    tx.Write(alice, "100");
    tx.Write(bob, "100");
    tx.Write(carol, "0");
    bool done = false;
    tx.Commit([&](Status s) {
      std::printf("seed accounts: %s (alice=100, bob=100, carol=0)\n", s.ToString().c_str());
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
  }

  // Two transfers race on Alice's account; conflicts retry, money conserved.
  int completed = 0;
  int moved = 0;
  auto on_done = [&](bool ok) {
    if (ok) {
      ++moved;
    }
    ++completed;
  };
  Transfer(cluster, client, alice, bob, 30, on_done);
  Transfer(cluster, client, alice, carol, 50, on_done);
  while (completed < 2 && cluster.sim().Step()) {
  }
  std::printf("2 concurrent transfers from alice: %d succeeded (conflicts retried)\n", moved);

  // Overdraft attempt: the conditional write aborts client-side.
  bool overdraft_done = false;
  bool overdraft_moved = false;
  Transfer(cluster, client, alice, bob, 1'000'000, [&](bool ok) {
    overdraft_moved = ok;
    std::printf("overdraft transfer: %s\n", ok ? "MOVED (bug!)" : "refused");
    overdraft_done = true;
  });
  while (!overdraft_done && cluster.sim().Step()) {
  }

  // Audit: total money is conserved across all accounts.
  int64_t total = 0;
  {
    Tx tx(client);
    bool done = false;
    tx.MultiRead({alice, bob, carol}, [&](Status, auto values) {
      const char* names[] = {"alice", "bob", "carol"};
      for (size_t i = 0; i < values.size(); ++i) {
        std::printf("  %s = %lld\n", names[i],
                    static_cast<long long>(Balance(values[i])));
        total += Balance(values[i]);
      }
      std::printf("  total = %lld (must be 200)\n", static_cast<long long>(total));
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
  }

  bool ok = completed == 2 && moved == 2 && !overdraft_moved && total == 200 &&
            !watchdog.fired();
  if (!ok) {
    std::printf("FAILED: completed=%d moved=%d overdraft_moved=%d total=%lld "
                "watchdog_fired=%d\n",
                completed, moved, overdraft_moved ? 1 : 0, static_cast<long long>(total),
                watchdog.fired() ? 1 : 0);
  }
  return ok ? 0 : 1;
}
