// Site failure and recovery (Sections 4.4 and 5.7): a disaster takes out the
// Virginia site; the configuration service removes it aggressively, re-homing
// its containers and discarding its unreplicated transactions; later the site
// returns and is re-integrated.
//
//   build/examples/site_failover
#include <cstdio>
#include <memory>

#include "src/config/config_service.h"
#include "src/core/cluster.h"
#include "src/obs/watchdog.h"

using namespace walter;

namespace {

void Wait(Cluster& cluster, const bool& flag) {
  while (!flag && cluster.sim().Step()) {
  }
}

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   std::string value) {
  Tx tx(client);
  tx.Write(oid, std::move(value));
  Status result = Status::Internal("unfinished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  Wait(cluster, done);
  return result;
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid) {
  Tx tx(client);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status, std::optional<std::string> v) {
    value = std::move(v);
    done = true;
  });
  Wait(cluster, done);
  return value;
}

}  // namespace

int main() {
  std::printf("Site failure + aggressive recovery + re-integration (3 sites)\n\n");

  ClusterOptions options;
  options.num_sites = 3;
  Cluster cluster(options);
  // Turn any stalled transaction into a loud stage/site verdict rather than an
  // infinite wait loop. The budget is generous because failover legitimately
  // parks client retries for several seconds of virtual time.
  WatchdogOptions wd;
  wd.budget = Seconds(60);
  LivenessWatchdog watchdog(&cluster.sim(), wd);
  // One configuration-service node per site (Paxos-replicated, Section 5.1).
  std::vector<std::unique_ptr<ConfigService>> configs;
  for (SiteId s = 0; s < 3; ++s) {
    configs.push_back(std::make_unique<ConfigService>(
        &cluster.sim(), &cluster.net(), s, 3, &cluster.directory(s), &cluster.server(s)));
  }

  WalterClient* va = cluster.AddClient(0);

  // Two commits at VA; only the first replicates before the disaster.
  Status commit1 = CommitWrite(cluster, va, ObjectId{0, 1}, "replicated");
  std::printf("[VA] commit #1: %s\n", commit1.ToString().c_str());
  cluster.RunFor(Seconds(2));
  cluster.net().IsolateSite(0, true);  // the disaster starts: VA unreachable
  std::printf("[VA] commit #2 (while cut off): %s\n",
              CommitWrite(cluster, va, ObjectId{0, 2}, "unreplicated").ToString().c_str());
  cluster.RunFor(Seconds(1));
  cluster.server(0).Crash();
  std::printf("\n*** Virginia is gone. ***\n\n");

  // A survivor coordinates the aggressive removal (Section 5.7): compute the
  // surviving prefix, fill gaps among survivors, propose RemoveSite via Paxos.
  SiteRecoveryCoordinator coordinator(
      &cluster.sim(), {&cluster.server(0), &cluster.server(1), &cluster.server(2)},
      configs[1].get());
  bool removed = false;
  coordinator.RemoveFailedSite(/*failed=*/0, /*new_preferred=*/1, [&](Status s) {
    std::printf("RemoveSite(VA -> CA) chosen by Paxos: %s\n", s.ToString().c_str());
    removed = true;
  });
  cluster.RunFor(Seconds(10));

  WalterClient* ca = cluster.AddClient(1);
  std::optional<std::string> survived = ReadOnce(cluster, ca, ObjectId{0, 1});
  std::printf("[CA] read of replicated commit:   \"%s\"\n",
              survived.value_or("<nil>").c_str());
  std::optional<std::string> abandoned = ReadOnce(cluster, ca, ObjectId{0, 2});
  std::printf("[CA] read of unreplicated commit: \"%s\"  (abandoned, per the aggressive\n"
              "     option: availability over durability for unpropagated commits)\n",
              abandoned.value_or("<nil>").c_str());

  // VA's containers are re-homed: CA now fast-commits writes to them.
  Status rehomed = CommitWrite(cluster, ca, ObjectId{0, 3}, "new home");
  std::printf("[CA] write to re-homed container: %s (fast commit at CA)\n",
              rehomed.ToString().c_str());

  // The site returns: replacement server from the durable image, then a
  // re-integration proposal restores the old preferred-site assignment.
  std::printf("\n*** Virginia returns. ***\n\n");
  cluster.net().IsolateSite(0, false);
  cluster.ReplaceServer(0);
  bool back = false;
  configs[1]->ProposeReintegrateSite(0, [&](Status s) {
    std::printf("ReintegrateSite(VA) chosen by Paxos: %s\n", s.ToString().c_str());
    back = true;
  });
  cluster.RunFor(Seconds(10));

  WalterClient* va2 = cluster.AddClient(0);
  std::optional<std::string> synced = ReadOnce(cluster, va2, ObjectId{0, 3});
  std::printf("[VA] read after re-integration: \"%s\" (synchronized from survivors)\n",
              synced.value_or("<nil>").c_str());
  Status home_again = CommitWrite(cluster, va2, ObjectId{0, 4}, "home again");
  std::printf("[VA] write after re-integration: %s\n", home_again.ToString().c_str());
  std::printf("\nDone: lease moved VA -> CA -> VA through the Paxos-replicated\n"
              "configuration; surviving data was preserved, unpropagated data dropped.\n");

  bool ok = commit1.ok() && removed && survived == "replicated" && !abandoned.has_value() &&
            rehomed.ok() && back && synced == "new home" && home_again.ok() &&
            !watchdog.fired();
  if (!ok) {
    std::printf("FAILED: commit1=%s removed=%d survived=%s abandoned=%d rehomed=%s "
                "back=%d synced=%s home_again=%s watchdog_fired=%d\n",
                commit1.ToString().c_str(), removed ? 1 : 0,
                survived.value_or("<nil>").c_str(), abandoned.has_value() ? 1 : 0,
                rehomed.ToString().c_str(), back ? 1 : 0, synced.value_or("<nil>").c_str(),
                home_again.ToString().c_str(), watchdog.fired() ? 1 : 0);
  }
  return ok ? 0 : 1;
}
