file(REMOVE_RECURSE
  "CMakeFiles/psi_spec_test.dir/psi_spec_test.cc.o"
  "CMakeFiles/psi_spec_test.dir/psi_spec_test.cc.o.d"
  "psi_spec_test"
  "psi_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
