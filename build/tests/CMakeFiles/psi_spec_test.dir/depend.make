# Empty dependencies file for psi_spec_test.
# This may be replaced when dependencies are built.
