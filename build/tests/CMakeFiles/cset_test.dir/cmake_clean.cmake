file(REMOVE_RECURSE
  "CMakeFiles/cset_test.dir/cset_test.cc.o"
  "CMakeFiles/cset_test.dir/cset_test.cc.o.d"
  "cset_test"
  "cset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
