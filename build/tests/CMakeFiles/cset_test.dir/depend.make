# Empty dependencies file for cset_test.
# This may be replaced when dependencies are built.
