file(REMOVE_RECURSE
  "CMakeFiles/waltsocial_test.dir/waltsocial_test.cc.o"
  "CMakeFiles/waltsocial_test.dir/waltsocial_test.cc.o.d"
  "waltsocial_test"
  "waltsocial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waltsocial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
