# Empty compiler generated dependencies file for waltsocial_test.
# This may be replaced when dependencies are built.
