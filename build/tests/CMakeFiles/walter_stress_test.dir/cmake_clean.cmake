file(REMOVE_RECURSE
  "CMakeFiles/walter_stress_test.dir/walter_stress_test.cc.o"
  "CMakeFiles/walter_stress_test.dir/walter_stress_test.cc.o.d"
  "walter_stress_test"
  "walter_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
