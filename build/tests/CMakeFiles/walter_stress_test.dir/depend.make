# Empty dependencies file for walter_stress_test.
# This may be replaced when dependencies are built.
