# Empty dependencies file for retwis_test.
# This may be replaced when dependencies are built.
