file(REMOVE_RECURSE
  "CMakeFiles/walter_client_test.dir/walter_client_test.cc.o"
  "CMakeFiles/walter_client_test.dir/walter_client_test.cc.o.d"
  "walter_client_test"
  "walter_client_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
