# Empty compiler generated dependencies file for walter_client_test.
# This may be replaced when dependencies are built.
