# Empty dependencies file for walter_failure_test.
# This may be replaced when dependencies are built.
