file(REMOVE_RECURSE
  "CMakeFiles/walter_failure_test.dir/walter_failure_test.cc.o"
  "CMakeFiles/walter_failure_test.dir/walter_failure_test.cc.o.d"
  "walter_failure_test"
  "walter_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
