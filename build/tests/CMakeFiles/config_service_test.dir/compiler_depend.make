# Empty compiler generated dependencies file for config_service_test.
# This may be replaced when dependencies are built.
