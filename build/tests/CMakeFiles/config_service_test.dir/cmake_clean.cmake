file(REMOVE_RECURSE
  "CMakeFiles/config_service_test.dir/config_service_test.cc.o"
  "CMakeFiles/config_service_test.dir/config_service_test.cc.o.d"
  "config_service_test"
  "config_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
