file(REMOVE_RECURSE
  "CMakeFiles/walter_basic_test.dir/walter_basic_test.cc.o"
  "CMakeFiles/walter_basic_test.dir/walter_basic_test.cc.o.d"
  "walter_basic_test"
  "walter_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
