# Empty dependencies file for walter_basic_test.
# This may be replaced when dependencies are built.
