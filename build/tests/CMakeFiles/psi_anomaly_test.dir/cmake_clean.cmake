file(REMOVE_RECURSE
  "CMakeFiles/psi_anomaly_test.dir/psi_anomaly_test.cc.o"
  "CMakeFiles/psi_anomaly_test.dir/psi_anomaly_test.cc.o.d"
  "psi_anomaly_test"
  "psi_anomaly_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_anomaly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
