file(REMOVE_RECURSE
  "CMakeFiles/walter_psi_test.dir/walter_psi_test.cc.o"
  "CMakeFiles/walter_psi_test.dir/walter_psi_test.cc.o.d"
  "walter_psi_test"
  "walter_psi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_psi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
