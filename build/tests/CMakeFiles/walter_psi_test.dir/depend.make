# Empty dependencies file for walter_psi_test.
# This may be replaced when dependencies are built.
