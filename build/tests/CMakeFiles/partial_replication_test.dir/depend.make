# Empty dependencies file for partial_replication_test.
# This may be replaced when dependencies are built.
