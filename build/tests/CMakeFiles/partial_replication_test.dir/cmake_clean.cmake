file(REMOVE_RECURSE
  "CMakeFiles/partial_replication_test.dir/partial_replication_test.cc.o"
  "CMakeFiles/partial_replication_test.dir/partial_replication_test.cc.o.d"
  "partial_replication_test"
  "partial_replication_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
