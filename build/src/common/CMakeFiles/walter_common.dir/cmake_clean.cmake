file(REMOVE_RECURSE
  "CMakeFiles/walter_common.dir/logging.cc.o"
  "CMakeFiles/walter_common.dir/logging.cc.o.d"
  "CMakeFiles/walter_common.dir/stats.cc.o"
  "CMakeFiles/walter_common.dir/stats.cc.o.d"
  "CMakeFiles/walter_common.dir/status.cc.o"
  "CMakeFiles/walter_common.dir/status.cc.o.d"
  "CMakeFiles/walter_common.dir/types.cc.o"
  "CMakeFiles/walter_common.dir/types.cc.o.d"
  "CMakeFiles/walter_common.dir/update.cc.o"
  "CMakeFiles/walter_common.dir/update.cc.o.d"
  "libwalter_common.a"
  "libwalter_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
