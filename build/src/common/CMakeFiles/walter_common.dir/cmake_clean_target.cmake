file(REMOVE_RECURSE
  "libwalter_common.a"
)
