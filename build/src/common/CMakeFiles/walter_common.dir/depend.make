# Empty dependencies file for walter_common.
# This may be replaced when dependencies are built.
