file(REMOVE_RECURSE
  "CMakeFiles/retwis.dir/retwis/retwis.cc.o"
  "CMakeFiles/retwis.dir/retwis/retwis.cc.o.d"
  "libretwis.a"
  "libretwis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retwis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
