# Empty compiler generated dependencies file for retwis.
# This may be replaced when dependencies are built.
