file(REMOVE_RECURSE
  "libretwis.a"
)
