# Empty dependencies file for waltsocial.
# This may be replaced when dependencies are built.
