file(REMOVE_RECURSE
  "libwaltsocial.a"
)
