file(REMOVE_RECURSE
  "CMakeFiles/waltsocial.dir/waltsocial/waltsocial.cc.o"
  "CMakeFiles/waltsocial.dir/waltsocial/waltsocial.cc.o.d"
  "libwaltsocial.a"
  "libwaltsocial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waltsocial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
