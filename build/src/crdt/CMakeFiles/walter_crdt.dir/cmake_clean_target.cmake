file(REMOVE_RECURSE
  "libwalter_crdt.a"
)
