# Empty dependencies file for walter_crdt.
# This may be replaced when dependencies are built.
