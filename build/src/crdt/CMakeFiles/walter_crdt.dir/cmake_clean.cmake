file(REMOVE_RECURSE
  "CMakeFiles/walter_crdt.dir/cset.cc.o"
  "CMakeFiles/walter_crdt.dir/cset.cc.o.d"
  "libwalter_crdt.a"
  "libwalter_crdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_crdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
