# Empty dependencies file for walter_net.
# This may be replaced when dependencies are built.
