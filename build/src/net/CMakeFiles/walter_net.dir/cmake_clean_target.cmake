file(REMOVE_RECURSE
  "libwalter_net.a"
)
