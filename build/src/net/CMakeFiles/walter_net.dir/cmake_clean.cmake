file(REMOVE_RECURSE
  "CMakeFiles/walter_net.dir/network.cc.o"
  "CMakeFiles/walter_net.dir/network.cc.o.d"
  "CMakeFiles/walter_net.dir/topology.cc.o"
  "CMakeFiles/walter_net.dir/topology.cc.o.d"
  "libwalter_net.a"
  "libwalter_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
