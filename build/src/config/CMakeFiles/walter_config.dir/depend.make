# Empty dependencies file for walter_config.
# This may be replaced when dependencies are built.
