file(REMOVE_RECURSE
  "CMakeFiles/walter_config.dir/config_service.cc.o"
  "CMakeFiles/walter_config.dir/config_service.cc.o.d"
  "CMakeFiles/walter_config.dir/paxos.cc.o"
  "CMakeFiles/walter_config.dir/paxos.cc.o.d"
  "libwalter_config.a"
  "libwalter_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
