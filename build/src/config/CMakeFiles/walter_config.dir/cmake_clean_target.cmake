file(REMOVE_RECURSE
  "libwalter_config.a"
)
