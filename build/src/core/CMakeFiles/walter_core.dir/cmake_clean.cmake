file(REMOVE_RECURSE
  "CMakeFiles/walter_core.dir/client.cc.o"
  "CMakeFiles/walter_core.dir/client.cc.o.d"
  "CMakeFiles/walter_core.dir/cluster.cc.o"
  "CMakeFiles/walter_core.dir/cluster.cc.o.d"
  "CMakeFiles/walter_core.dir/messages.cc.o"
  "CMakeFiles/walter_core.dir/messages.cc.o.d"
  "CMakeFiles/walter_core.dir/server.cc.o"
  "CMakeFiles/walter_core.dir/server.cc.o.d"
  "libwalter_core.a"
  "libwalter_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
