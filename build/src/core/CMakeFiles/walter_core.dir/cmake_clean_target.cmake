file(REMOVE_RECURSE
  "libwalter_core.a"
)
