# Empty compiler generated dependencies file for walter_core.
# This may be replaced when dependencies are built.
