# Empty dependencies file for walter_baseline.
# This may be replaced when dependencies are built.
