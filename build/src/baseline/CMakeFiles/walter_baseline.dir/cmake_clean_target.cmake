file(REMOVE_RECURSE
  "libwalter_baseline.a"
)
