
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bdb_store.cc" "src/baseline/CMakeFiles/walter_baseline.dir/bdb_store.cc.o" "gcc" "src/baseline/CMakeFiles/walter_baseline.dir/bdb_store.cc.o.d"
  "/root/repo/src/baseline/eventual_store.cc" "src/baseline/CMakeFiles/walter_baseline.dir/eventual_store.cc.o" "gcc" "src/baseline/CMakeFiles/walter_baseline.dir/eventual_store.cc.o.d"
  "/root/repo/src/baseline/redis_store.cc" "src/baseline/CMakeFiles/walter_baseline.dir/redis_store.cc.o" "gcc" "src/baseline/CMakeFiles/walter_baseline.dir/redis_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/walter_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/walter_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/walter_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
