file(REMOVE_RECURSE
  "CMakeFiles/walter_baseline.dir/bdb_store.cc.o"
  "CMakeFiles/walter_baseline.dir/bdb_store.cc.o.d"
  "CMakeFiles/walter_baseline.dir/eventual_store.cc.o"
  "CMakeFiles/walter_baseline.dir/eventual_store.cc.o.d"
  "CMakeFiles/walter_baseline.dir/redis_store.cc.o"
  "CMakeFiles/walter_baseline.dir/redis_store.cc.o.d"
  "libwalter_baseline.a"
  "libwalter_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
