file(REMOVE_RECURSE
  "CMakeFiles/walter_storage.dir/lru_cache.cc.o"
  "CMakeFiles/walter_storage.dir/lru_cache.cc.o.d"
  "CMakeFiles/walter_storage.dir/object_history.cc.o"
  "CMakeFiles/walter_storage.dir/object_history.cc.o.d"
  "CMakeFiles/walter_storage.dir/store.cc.o"
  "CMakeFiles/walter_storage.dir/store.cc.o.d"
  "CMakeFiles/walter_storage.dir/wal.cc.o"
  "CMakeFiles/walter_storage.dir/wal.cc.o.d"
  "libwalter_storage.a"
  "libwalter_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
