file(REMOVE_RECURSE
  "libwalter_storage.a"
)
