# Empty dependencies file for walter_storage.
# This may be replaced when dependencies are built.
