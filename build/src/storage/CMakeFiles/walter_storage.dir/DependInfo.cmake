
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/lru_cache.cc" "src/storage/CMakeFiles/walter_storage.dir/lru_cache.cc.o" "gcc" "src/storage/CMakeFiles/walter_storage.dir/lru_cache.cc.o.d"
  "/root/repo/src/storage/object_history.cc" "src/storage/CMakeFiles/walter_storage.dir/object_history.cc.o" "gcc" "src/storage/CMakeFiles/walter_storage.dir/object_history.cc.o.d"
  "/root/repo/src/storage/store.cc" "src/storage/CMakeFiles/walter_storage.dir/store.cc.o" "gcc" "src/storage/CMakeFiles/walter_storage.dir/store.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/walter_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/walter_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/walter_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crdt/CMakeFiles/walter_crdt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
