
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psi/checker.cc" "src/psi/CMakeFiles/walter_psi.dir/checker.cc.o" "gcc" "src/psi/CMakeFiles/walter_psi.dir/checker.cc.o.d"
  "/root/repo/src/psi/psi_spec.cc" "src/psi/CMakeFiles/walter_psi.dir/psi_spec.cc.o" "gcc" "src/psi/CMakeFiles/walter_psi.dir/psi_spec.cc.o.d"
  "/root/repo/src/psi/si_spec.cc" "src/psi/CMakeFiles/walter_psi.dir/si_spec.cc.o" "gcc" "src/psi/CMakeFiles/walter_psi.dir/si_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/walter_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crdt/CMakeFiles/walter_crdt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
