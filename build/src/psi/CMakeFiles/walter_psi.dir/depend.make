# Empty dependencies file for walter_psi.
# This may be replaced when dependencies are built.
