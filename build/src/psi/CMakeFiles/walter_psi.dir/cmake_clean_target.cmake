file(REMOVE_RECURSE
  "libwalter_psi.a"
)
