file(REMOVE_RECURSE
  "CMakeFiles/walter_psi.dir/checker.cc.o"
  "CMakeFiles/walter_psi.dir/checker.cc.o.d"
  "CMakeFiles/walter_psi.dir/psi_spec.cc.o"
  "CMakeFiles/walter_psi.dir/psi_spec.cc.o.d"
  "CMakeFiles/walter_psi.dir/si_spec.cc.o"
  "CMakeFiles/walter_psi.dir/si_spec.cc.o.d"
  "libwalter_psi.a"
  "libwalter_psi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_psi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
