# Empty dependencies file for walter_sim.
# This may be replaced when dependencies are built.
