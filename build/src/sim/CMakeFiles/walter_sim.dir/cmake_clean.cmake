file(REMOVE_RECURSE
  "CMakeFiles/walter_sim.dir/disk.cc.o"
  "CMakeFiles/walter_sim.dir/disk.cc.o.d"
  "CMakeFiles/walter_sim.dir/resource.cc.o"
  "CMakeFiles/walter_sim.dir/resource.cc.o.d"
  "CMakeFiles/walter_sim.dir/simulator.cc.o"
  "CMakeFiles/walter_sim.dir/simulator.cc.o.d"
  "libwalter_sim.a"
  "libwalter_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walter_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
