file(REMOVE_RECURSE
  "libwalter_sim.a"
)
