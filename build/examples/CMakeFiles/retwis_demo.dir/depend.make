# Empty dependencies file for retwis_demo.
# This may be replaced when dependencies are built.
