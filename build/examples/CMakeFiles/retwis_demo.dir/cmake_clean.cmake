file(REMOVE_RECURSE
  "CMakeFiles/retwis_demo.dir/retwis_demo.cpp.o"
  "CMakeFiles/retwis_demo.dir/retwis_demo.cpp.o.d"
  "retwis_demo"
  "retwis_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retwis_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
