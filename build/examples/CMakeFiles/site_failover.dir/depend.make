# Empty dependencies file for site_failover.
# This may be replaced when dependencies are built.
