file(REMOVE_RECURSE
  "CMakeFiles/site_failover.dir/site_failover.cpp.o"
  "CMakeFiles/site_failover.dir/site_failover.cpp.o.d"
  "site_failover"
  "site_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
