file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_slowcommit.dir/bench_fig20_slowcommit.cc.o"
  "CMakeFiles/bench_fig20_slowcommit.dir/bench_fig20_slowcommit.cc.o.d"
  "bench_fig20_slowcommit"
  "bench_fig20_slowcommit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_slowcommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
