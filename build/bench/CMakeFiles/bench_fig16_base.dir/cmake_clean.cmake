file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_base.dir/bench_fig16_base.cc.o"
  "CMakeFiles/bench_fig16_base.dir/bench_fig16_base.cc.o.d"
  "bench_fig16_base"
  "bench_fig16_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
