# Empty dependencies file for bench_fig16_base.
# This may be replaced when dependencies are built.
