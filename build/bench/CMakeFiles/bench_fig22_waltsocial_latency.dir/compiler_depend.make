# Empty compiler generated dependencies file for bench_fig22_waltsocial_latency.
# This may be replaced when dependencies are built.
