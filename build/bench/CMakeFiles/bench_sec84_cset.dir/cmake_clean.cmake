file(REMOVE_RECURSE
  "CMakeFiles/bench_sec84_cset.dir/bench_sec84_cset.cc.o"
  "CMakeFiles/bench_sec84_cset.dir/bench_sec84_cset.cc.o.d"
  "bench_sec84_cset"
  "bench_sec84_cset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec84_cset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
