file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_retwis.dir/bench_fig23_retwis.cc.o"
  "CMakeFiles/bench_fig23_retwis.dir/bench_fig23_retwis.cc.o.d"
  "bench_fig23_retwis"
  "bench_fig23_retwis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_retwis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
