# Empty dependencies file for bench_fig23_retwis.
# This may be replaced when dependencies are built.
