# Empty dependencies file for bench_abl_preferred_site.
# This may be replaced when dependencies are built.
