file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_preferred_site.dir/bench_abl_preferred_site.cc.o"
  "CMakeFiles/bench_abl_preferred_site.dir/bench_abl_preferred_site.cc.o.d"
  "bench_abl_preferred_site"
  "bench_abl_preferred_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_preferred_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
