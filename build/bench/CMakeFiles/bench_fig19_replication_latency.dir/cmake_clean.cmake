file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_replication_latency.dir/bench_fig19_replication_latency.cc.o"
  "CMakeFiles/bench_fig19_replication_latency.dir/bench_fig19_replication_latency.cc.o.d"
  "bench_fig19_replication_latency"
  "bench_fig19_replication_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_replication_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
