
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig19_replication_latency.cc" "bench/CMakeFiles/bench_fig19_replication_latency.dir/bench_fig19_replication_latency.cc.o" "gcc" "bench/CMakeFiles/bench_fig19_replication_latency.dir/bench_fig19_replication_latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/walter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/walter_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/walter_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/walter_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crdt/CMakeFiles/walter_crdt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/walter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
