# Empty compiler generated dependencies file for bench_fig19_replication_latency.
# This may be replaced when dependencies are built.
