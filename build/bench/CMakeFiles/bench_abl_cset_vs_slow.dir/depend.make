# Empty dependencies file for bench_abl_cset_vs_slow.
# This may be replaced when dependencies are built.
