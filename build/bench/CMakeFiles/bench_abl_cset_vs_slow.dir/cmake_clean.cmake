file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cset_vs_slow.dir/bench_abl_cset_vs_slow.cc.o"
  "CMakeFiles/bench_abl_cset_vs_slow.dir/bench_abl_cset_vs_slow.cc.o.d"
  "bench_abl_cset_vs_slow"
  "bench_abl_cset_vs_slow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cset_vs_slow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
