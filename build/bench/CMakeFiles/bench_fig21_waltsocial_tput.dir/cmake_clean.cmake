file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_waltsocial_tput.dir/bench_fig21_waltsocial_tput.cc.o"
  "CMakeFiles/bench_fig21_waltsocial_tput.dir/bench_fig21_waltsocial_tput.cc.o.d"
  "bench_fig21_waltsocial_tput"
  "bench_fig21_waltsocial_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_waltsocial_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
