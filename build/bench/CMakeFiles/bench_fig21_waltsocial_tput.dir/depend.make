# Empty dependencies file for bench_fig21_waltsocial_tput.
# This may be replaced when dependencies are built.
