# Empty dependencies file for bench_abl_batching.
# This may be replaced when dependencies are built.
